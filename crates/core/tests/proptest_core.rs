//! Property-based tests on the core scheduling and clustering
//! invariants, on the `eagleeye-check` harness (replay with
//! `EAGLEEYE_CHECK_SEED`, scale with `EAGLEEYE_CHECK_CASES`): every
//! schedule any solver emits must satisfy the paper's constraints
//! C1–C3, and every clustering must cover every point. The
//! ILP-vs-greedy domination property doubles as a differential oracle
//! between the exact and heuristic schedulers and runs at a higher
//! case budget.

use eagleeye_check::{check_cases, f64_range, prop_assert, prop_assert_eq, u64_range, vec_of, Gen};
use eagleeye_core::clustering::{cluster, covers_all, ClusteringMethod};
use eagleeye_core::pointing::GroundPoint;
use eagleeye_core::schedule::{
    validate_schedule, AbbScheduler, DpScheduler, FollowerState, GreedyScheduler, IlpScheduler,
    ResilientScheduler, Scheduler, SchedulingProblem, SolverChoice, TaskSpec,
};
use eagleeye_core::SensingSpec;
use std::time::Duration;

const CASES: u32 = 48;
/// The acceptance-critical ILP-vs-greedy oracle runs at a higher
/// budget.
const ORACLE_CASES: u32 = 128;

fn tasks_gen(max_n: usize) -> impl Gen<Value = Vec<TaskSpec>> {
    vec_of(
        (
            f64_range(-90_000.0, 90_000.0),
            f64_range(-20_000.0, 140_000.0),
            f64_range(0.1, 5.0),
        ),
        1,
        max_n,
    )
    .map(|v| {
        v.into_iter()
            .map(|(x, y, val)| TaskSpec::new(x, y, val))
            .collect()
    })
}

fn followers_gen() -> impl Gen<Value = Vec<FollowerState>> {
    vec_of(f64_range(-160_000.0, -80_000.0), 1, 4)
        .map(|v| v.into_iter().map(FollowerState::at_start).collect())
}

/// Every ILP schedule validates against C1/C2/C3 and dominates greedy.
/// This is the exact-vs-heuristic differential oracle of the
/// scheduling stack, so it runs on a larger instance pool.
#[test]
fn ilp_schedules_validate_and_dominate_greedy() {
    check_cases(
        ORACLE_CASES,
        "ilp_schedules_validate_and_dominate_greedy",
        (tasks_gen(10), followers_gen()),
        |(tasks, followers)| {
            let p = SchedulingProblem::new(
                SensingSpec::paper_default(),
                tasks.clone(),
                followers.clone(),
            )
            .expect("valid problem");
            let ilp = IlpScheduler::default().schedule(&p).expect("ilp");
            let greedy = GreedyScheduler.schedule(&p).expect("greedy");
            ilp.validate(&p).expect("ilp schedule feasible");
            greedy.validate(&p).expect("greedy schedule feasible");
            prop_assert!(
                ilp.total_value >= greedy.total_value - 1e-9,
                "ilp {} < greedy {}",
                ilp.total_value,
                greedy.total_value
            );
            Ok(())
        },
    );
}

/// AB&B schedules are always feasible, even under tiny deadlines.
#[test]
fn abb_schedules_validate() {
    check_cases(
        CASES,
        "abb_schedules_validate",
        (tasks_gen(8), u64_range(1, 200)),
        |(tasks, millis)| {
            let p = SchedulingProblem::new(
                SensingSpec::paper_default(),
                tasks.clone(),
                vec![FollowerState::at_start(-100_000.0)],
            )
            .expect("valid problem");
            let s = AbbScheduler::new(Duration::from_millis(*millis))
                .schedule(&p)
                .expect("abb");
            s.validate(&p).expect("abb schedule feasible");
            Ok(())
        },
    );
}

/// The single-follower DP optimum is a lower bound for the ILP.
#[test]
fn dp_is_a_lower_bound_for_ilp() {
    check_cases(
        CASES,
        "dp_is_a_lower_bound_for_ilp",
        tasks_gen(7),
        |tasks| {
            let p = SchedulingProblem::new(
                SensingSpec::paper_default(),
                tasks.clone(),
                vec![FollowerState::at_start(-100_000.0)],
            )
            .expect("valid problem");
            let dp = DpScheduler { slots_per_task: 3 }.schedule(&p).expect("dp");
            let ilp = IlpScheduler {
                slots_per_task: 3,
                ..IlpScheduler::default()
            }
            .schedule(&p)
            .expect("ilp");
            dp.validate(&p).expect("dp feasible");
            prop_assert!(
                ilp.total_value >= dp.total_value - 1e-6,
                "ilp {} below dp bound {}",
                ilp.total_value,
                dp.total_value
            );
            Ok(())
        },
    );
}

/// Clustering covers every point, assigns each exactly once, and the
/// ILP cover is never larger than the greedy one.
#[test]
fn clustering_covers_everything() {
    check_cases(
        CASES,
        "clustering_covers_everything",
        (
            vec_of(
                (f64_range(-50_000.0, 50_000.0), f64_range(0.0, 110_000.0)),
                1,
                60,
            ),
            f64_range(2_000.0, 20_000.0),
            f64_range(2_000.0, 20_000.0),
        ),
        |(coords, w, h)| {
            let (w, h) = (*w, *h);
            let points: Vec<(GroundPoint, f64)> = coords
                .iter()
                .map(|&(x, y)| (GroundPoint::new(x, y), 1.0))
                .collect();
            let ilp = cluster(&points, w, h, ClusteringMethod::Ilp).expect("ilp cover");
            let greedy = cluster(&points, w, h, ClusteringMethod::Greedy).expect("greedy cover");
            prop_assert!(covers_all(&points, &ilp, w, h));
            prop_assert!(covers_all(&points, &greedy, w, h));
            prop_assert!(
                ilp.len() <= greedy.len(),
                "ilp used {} boxes, greedy {}",
                ilp.len(),
                greedy.len()
            );

            // Exactly-once assignment.
            let mut count = vec![0usize; points.len()];
            for c in &ilp {
                for &m in &c.members {
                    count[m] += 1;
                }
            }
            prop_assert!(count.iter().all(|&k| k == 1));

            // Cluster values sum to the total point value.
            let total: f64 = ilp.iter().map(|c| c.value).sum();
            prop_assert!((total - points.len() as f64).abs() < 1e-6);
            Ok(())
        },
    );
}

/// The resilient wrapper always returns a validated schedule, for
/// any budget — including budgets that force the greedy fallback.
#[test]
fn resilient_schedules_validate_under_any_budget() {
    check_cases(
        CASES,
        "resilient_schedules_validate_under_any_budget",
        (tasks_gen(10), followers_gen(), u64_range(0, 50)),
        |(tasks, followers, budget_ms)| {
            let p = SchedulingProblem::new(
                SensingSpec::paper_default(),
                tasks.clone(),
                followers.clone(),
            )
            .expect("valid problem");
            let rs = ResilientScheduler::with_budget(Duration::from_millis(*budget_ms));
            let o = rs.schedule_with_outcome(&p).expect("resilient");
            validate_schedule(&p, &o.schedule).expect("outcome schedule feasible");
            // Provenance is consistent: a fallback reason implies greedy.
            if o.fallback.is_some() {
                prop_assert_eq!(o.solver, SolverChoice::Greedy);
            } else {
                prop_assert_eq!(o.solver, SolverChoice::Ilp);
            }
            Ok(())
        },
    );
}

/// Visibility windows always respect the off-nadir cone: sampling the
/// window interior never exceeds theta_max.
#[test]
fn windows_respect_theta_max() {
    check_cases(
        CASES,
        "windows_respect_theta_max",
        (
            f64_range(-95_000.0, 95_000.0),
            f64_range(-50_000.0, 200_000.0),
            f64_range(-200_000.0, -80_000.0),
        ),
        |&(x, y, start)| {
            let spec = SensingSpec::paper_default();
            let p = SchedulingProblem::new(
                spec,
                vec![TaskSpec::new(x, y, 1.0)],
                vec![FollowerState::at_start(start)],
            )
            .expect("valid problem");
            if let Some(w) = p.window(0, 0) {
                for k in 0..=10 {
                    let t = w.start_s + w.duration_s() * k as f64 / 10.0;
                    let sat = p.followers()[0].along_at(t, spec.ground_speed_m_s);
                    let angle = eagleeye_core::pointing::off_nadir_rad(
                        &GroundPoint::new(x, y),
                        sat,
                        spec.altitude_m,
                    );
                    prop_assert!(
                        angle <= spec.theta_max_rad + 1e-6,
                        "angle {} at t {} exceeds cone",
                        angle,
                        t
                    );
                }
            }
            Ok(())
        },
    );
}
