//! Property-based tests on the core scheduling and clustering
//! invariants: every schedule any solver emits must satisfy the paper's
//! constraints C1–C3, and every clustering must cover every point.

use eagleeye_core::clustering::{cluster, covers_all, ClusteringMethod};
use eagleeye_core::pointing::GroundPoint;
use eagleeye_core::schedule::{
    validate_schedule, AbbScheduler, DpScheduler, FollowerState, GreedyScheduler, IlpScheduler,
    ResilientScheduler, Scheduler, SchedulingProblem, SolverChoice, TaskSpec,
};
use eagleeye_core::SensingSpec;
use proptest::prelude::*;
use std::time::Duration;

fn tasks_strategy(max_n: usize) -> impl Strategy<Value = Vec<TaskSpec>> {
    proptest::collection::vec(
        (-90_000.0f64..90_000.0, -20_000.0f64..140_000.0, 0.1f64..5.0),
        1..max_n,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(x, y, val)| TaskSpec::new(x, y, val))
            .collect()
    })
}

fn followers_strategy() -> impl Strategy<Value = Vec<FollowerState>> {
    proptest::collection::vec(-160_000.0f64..-80_000.0, 1..4)
        .prop_map(|v| v.into_iter().map(FollowerState::at_start).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every ILP schedule validates against C1/C2/C3 and dominates greedy.
    #[test]
    fn ilp_schedules_validate_and_dominate_greedy(
        tasks in tasks_strategy(14),
        followers in followers_strategy(),
    ) {
        let p = SchedulingProblem::new(SensingSpec::paper_default(), tasks, followers)
            .expect("valid problem");
        let ilp = IlpScheduler::default().schedule(&p).expect("ilp");
        let greedy = GreedyScheduler.schedule(&p).expect("greedy");
        ilp.validate(&p).expect("ilp schedule feasible");
        greedy.validate(&p).expect("greedy schedule feasible");
        prop_assert!(ilp.total_value >= greedy.total_value - 1e-9,
            "ilp {} < greedy {}", ilp.total_value, greedy.total_value);
    }

    /// AB&B schedules are always feasible, even under tiny deadlines.
    #[test]
    fn abb_schedules_validate(
        tasks in tasks_strategy(8),
        millis in 1u64..200,
    ) {
        let p = SchedulingProblem::new(
            SensingSpec::paper_default(),
            tasks,
            vec![FollowerState::at_start(-100_000.0)],
        ).expect("valid problem");
        let s = AbbScheduler::new(Duration::from_millis(millis))
            .schedule(&p)
            .expect("abb");
        s.validate(&p).expect("abb schedule feasible");
    }

    /// The single-follower DP optimum is a lower bound for the ILP.
    #[test]
    fn dp_is_a_lower_bound_for_ilp(tasks in tasks_strategy(7)) {
        let p = SchedulingProblem::new(
            SensingSpec::paper_default(),
            tasks,
            vec![FollowerState::at_start(-100_000.0)],
        ).expect("valid problem");
        let dp = DpScheduler { slots_per_task: 3 }.schedule(&p).expect("dp");
        let ilp = IlpScheduler { slots_per_task: 3, ..IlpScheduler::default() }
            .schedule(&p)
            .expect("ilp");
        dp.validate(&p).expect("dp feasible");
        prop_assert!(ilp.total_value >= dp.total_value - 1e-6,
            "ilp {} below dp bound {}", ilp.total_value, dp.total_value);
    }

    /// Clustering covers every point, assigns each exactly once, and the
    /// ILP cover is never larger than the greedy one.
    #[test]
    fn clustering_covers_everything(
        coords in proptest::collection::vec(
            (-50_000.0f64..50_000.0, 0.0f64..110_000.0), 1..60),
        w in 2_000.0f64..20_000.0,
        h in 2_000.0f64..20_000.0,
    ) {
        let points: Vec<(GroundPoint, f64)> = coords
            .into_iter()
            .map(|(x, y)| (GroundPoint::new(x, y), 1.0))
            .collect();
        let ilp = cluster(&points, w, h, ClusteringMethod::Ilp).expect("ilp cover");
        let greedy = cluster(&points, w, h, ClusteringMethod::Greedy).expect("greedy cover");
        prop_assert!(covers_all(&points, &ilp, w, h));
        prop_assert!(covers_all(&points, &greedy, w, h));
        prop_assert!(ilp.len() <= greedy.len(),
            "ilp used {} boxes, greedy {}", ilp.len(), greedy.len());

        // Exactly-once assignment.
        let mut count = vec![0usize; points.len()];
        for c in &ilp {
            for &m in &c.members {
                count[m] += 1;
            }
        }
        prop_assert!(count.iter().all(|&k| k == 1));

        // Cluster values sum to the total point value.
        let total: f64 = ilp.iter().map(|c| c.value).sum();
        prop_assert!((total - points.len() as f64).abs() < 1e-6);
    }

    /// Visibility windows always respect the off-nadir cone: sampling the
    /// The resilient wrapper always returns a validated schedule, for
    /// any budget — including budgets that force the greedy fallback.
    #[test]
    fn resilient_schedules_validate_under_any_budget(
        tasks in tasks_strategy(10),
        followers in followers_strategy(),
        budget_ms in 0u64..50,
    ) {
        let p = SchedulingProblem::new(SensingSpec::paper_default(), tasks, followers)
            .expect("valid problem");
        let rs = ResilientScheduler::with_budget(Duration::from_millis(budget_ms));
        let o = rs.schedule_with_outcome(&p).expect("resilient");
        validate_schedule(&p, &o.schedule).expect("outcome schedule feasible");
        // Provenance is consistent: a fallback reason implies greedy.
        if o.fallback.is_some() {
            prop_assert_eq!(o.solver, SolverChoice::Greedy);
        } else {
            prop_assert_eq!(o.solver, SolverChoice::Ilp);
        }
    }

    /// window interior never exceeds theta_max.
    #[test]
    fn windows_respect_theta_max(
        x in -95_000.0f64..95_000.0,
        y in -50_000.0f64..200_000.0,
        start in -200_000.0f64..-80_000.0,
    ) {
        let spec = SensingSpec::paper_default();
        let p = SchedulingProblem::new(
            spec,
            vec![TaskSpec::new(x, y, 1.0)],
            vec![FollowerState::at_start(start)],
        ).expect("valid problem");
        if let Some(w) = p.window(0, 0) {
            for k in 0..=10 {
                let t = w.start_s + w.duration_s() * k as f64 / 10.0;
                let sat = p.followers()[0].along_at(t, spec.ground_speed_m_s);
                let angle = eagleeye_core::pointing::off_nadir_rad(
                    &GroundPoint::new(x, y), sat, spec.altitude_m);
                prop_assert!(angle <= spec.theta_max_rad + 1e-6,
                    "angle {} at t {} exceeds cone", angle, t);
            }
        }
    }
}
