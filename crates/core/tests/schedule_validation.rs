//! Cross-scheduler validation: every solver's output must pass the
//! standalone [`validate_schedule`] checker on randomized instances,
//! and corrupted schedules must be rejected with a descriptive
//! [`CoreError::ScheduleViolation`].

use eagleeye_core::schedule::{
    validate_schedule, AbbScheduler, Capture, DpScheduler, FollowerState, GreedyScheduler,
    IlpScheduler, ResilientScheduler, Schedule, Scheduler, SchedulingProblem, TaskSpec,
};
use eagleeye_core::{CoreError, SensingSpec};
use eagleeye_rng::SplitMix64;

/// A randomized scheduling instance: `n_tasks` reachable tasks spread
/// across the swath ahead of `n_followers` staggered followers.
fn random_problem(seed: u64, n_tasks: usize, n_followers: usize) -> SchedulingProblem {
    let mut rng = SplitMix64::new(seed);
    let tasks: Vec<TaskSpec> = (0..n_tasks)
        .map(|_| {
            TaskSpec::new(
                rng.range_f64(-60_000.0, 60_000.0),
                rng.range_f64(20_000.0, 150_000.0),
                rng.range_f64(0.5, 3.0),
            )
        })
        .collect();
    let followers: Vec<FollowerState> = (0..n_followers)
        .map(|k| FollowerState::at_start(-100_000.0 - k as f64 * rng.range_f64(20_000.0, 40_000.0)))
        .collect();
    SchedulingProblem::new(SensingSpec::paper_default(), tasks, followers)
        .expect("random instance is well-formed")
}

fn assert_valid(problem: &SchedulingProblem, scheduler: &dyn Scheduler, seed: u64) {
    let schedule = scheduler
        .schedule(problem)
        .unwrap_or_else(|e| panic!("{} failed on seed {seed}: {e}", scheduler.name()));
    validate_schedule(problem, &schedule).unwrap_or_else(|e| {
        panic!(
            "{} produced an invalid schedule on seed {seed}: {e}",
            scheduler.name()
        )
    });
}

#[test]
fn all_schedulers_validate_on_random_instances() {
    for seed in 0..12u64 {
        let mut rng = SplitMix64::new(seed ^ 0xA5A5);
        let n_tasks = rng.range_usize_inclusive(1, 8);
        let n_followers = rng.range_usize_inclusive(1, 3);
        let p = random_problem(seed, n_tasks, n_followers);
        assert_valid(&p, &IlpScheduler::default(), seed);
        assert_valid(&p, &GreedyScheduler, seed);
        assert_valid(&p, &AbbScheduler::with_frame_deadline(), seed);
        assert_valid(&p, &ResilientScheduler::default(), seed);
    }
}

#[test]
fn dp_oracle_validates_on_single_follower_instances() {
    for seed in 0..12u64 {
        let mut rng = SplitMix64::new(seed ^ 0x5A5A);
        let n_tasks = rng.range_usize_inclusive(1, 6);
        let p = random_problem(seed, n_tasks, 1);
        assert_valid(&p, &DpScheduler::default(), seed);
    }
}

/// A nonempty, valid ILP schedule for corruption tests.
fn valid_schedule() -> (SchedulingProblem, Schedule) {
    let p = random_problem(42, 6, 2);
    let s = IlpScheduler::default()
        .schedule(&p)
        .expect("solvable instance");
    assert!(
        s.captured_count() >= 2,
        "corruption tests need at least two captures"
    );
    validate_schedule(&p, &s).expect("baseline schedule is valid");
    (p, s)
}

fn expect_violation(problem: &SchedulingProblem, schedule: &Schedule, what: &str) {
    match validate_schedule(problem, schedule) {
        Err(CoreError::ScheduleViolation { description }) => {
            assert!(
                !description.is_empty(),
                "{what}: empty violation description"
            );
        }
        Err(e) => panic!("{what}: expected ScheduleViolation, got {e}"),
        Ok(()) => panic!("{what}: corrupted schedule passed validation"),
    }
}

#[test]
fn capture_outside_window_is_rejected() {
    let (p, mut s) = valid_schedule();
    let (f, k) = first_capture(&s);
    s.sequences[f][k].time_s += 1.0e6;
    expect_violation(&p, &s, "time shifted far outside the visibility window");
}

#[test]
fn duplicate_capture_is_rejected() {
    let (p, mut s) = valid_schedule();
    let (f, k) = first_capture(&s);
    let dup = s.sequences[f][k];
    s.sequences[f].push(Capture {
        task: dup.task,
        time_s: dup.time_s + 40.0,
    });
    expect_violation(&p, &s, "same task captured twice");
}

#[test]
fn out_of_order_sequence_is_rejected() {
    let (p, mut s) = valid_schedule();
    let f = (0..s.sequences.len())
        .find(|&f| s.sequences[f].len() >= 2)
        .or_else(|| {
            // Merge everything onto one follower to force a 2-capture
            // sequence, then break its ordering.
            let all: Vec<Capture> = s.sequences.iter().flatten().copied().collect();
            s.sequences[0] = all;
            for seq in s.sequences.iter_mut().skip(1) {
                seq.clear();
            }
            Some(0)
        })
        .expect("at least one follower");
    s.sequences[f].swap(0, 1);
    expect_violation(&p, &s, "captures out of time order");
}

#[test]
fn unknown_task_index_is_rejected() {
    let (p, mut s) = valid_schedule();
    let (f, k) = first_capture(&s);
    s.sequences[f][k].task = p.tasks().len() + 7;
    expect_violation(&p, &s, "capture referencing a nonexistent task");
}

#[test]
fn inconsistent_total_value_is_rejected() {
    let (p, mut s) = valid_schedule();
    s.total_value += 100.0;
    expect_violation(&p, &s, "reported total value disagrees with captures");
}

#[test]
fn wrong_sequence_count_is_rejected() {
    let (p, mut s) = valid_schedule();
    s.sequences.push(Vec::new());
    expect_violation(&p, &s, "more sequences than followers");
}

#[test]
fn impossible_slew_is_rejected() {
    let (p, mut s) = valid_schedule();
    // Compress a 2-capture sequence so the second capture allows the
    // ADACS essentially no time to rotate from the first pointing.
    let f = (0..s.sequences.len()).find(|&f| s.sequences[f].len() >= 2);
    let Some(f) = f else {
        // Single-capture sequences: pull the capture to the follower's
        // availability instant with a pointing that needs a real slew.
        let (f, k) = first_capture(&s);
        s.sequences[f][k].time_s = p.followers()[f].available_from_s;
        expect_violation(&p, &s, "capture with no time to slew from nadir");
        return;
    };
    s.sequences[f][1].time_s = s.sequences[f][0].time_s + 1e-6;
    expect_violation(&p, &s, "consecutive captures with no slew time (C1)");
}

fn first_capture(s: &Schedule) -> (usize, usize) {
    s.sequences
        .iter()
        .enumerate()
        .find_map(|(f, seq)| (!seq.is_empty()).then_some((f, 0)))
        .expect("schedule has at least one capture")
}
