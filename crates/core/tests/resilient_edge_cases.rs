//! Edge-case coverage for the degraded-mode scheduling stack:
//! degenerate problems (no tasks, no followers), total constellation
//! loss, and repair of schedules invalidated mid-pass.

use eagleeye_core::schedule::{
    validate_schedule, Capture, FollowerState, ResilientScheduler, Scheduler, SchedulingProblem,
    SolverChoice, TaskSpec,
};
use eagleeye_core::{CoreError, SensingSpec};
use std::time::Duration;

fn problem(tasks: Vec<TaskSpec>, followers: Vec<FollowerState>) -> SchedulingProblem {
    SchedulingProblem::new(SensingSpec::paper_default(), tasks, followers).expect("valid problem")
}

fn spread_tasks(n: usize) -> Vec<TaskSpec> {
    (0..n)
        .map(|i| TaskSpec::new(0.0, 30_000.0 + i as f64 * 25_000.0, 1.0))
        .collect()
}

#[test]
fn empty_problem_yields_empty_validated_schedule() {
    let p = problem(vec![], vec![]);
    let o = ResilientScheduler::default()
        .schedule_with_outcome(&p)
        .expect("empty problem schedules");
    assert_eq!(o.schedule.captured_count(), 0);
    assert!(o.schedule.sequences.is_empty());
    assert_eq!(o.schedule.total_value, 0.0);
    validate_schedule(&p, &o.schedule).expect("empty schedule validates");
}

#[test]
fn no_tasks_with_followers_schedules_nothing() {
    let p = problem(vec![], vec![FollowerState::at_start(-100_000.0)]);
    let o = ResilientScheduler::default()
        .schedule_with_outcome(&p)
        .expect("taskless problem schedules");
    assert_eq!(o.schedule.captured_count(), 0);
    assert_eq!(o.schedule.sequences.len(), 1);
    assert!(o.schedule.sequences[0].is_empty());
    validate_schedule(&p, &o.schedule).expect("empty sequences validate");
}

#[test]
fn no_followers_with_tasks_schedules_nothing() {
    let p = problem(spread_tasks(4), vec![]);
    let o = ResilientScheduler::default()
        .schedule_with_outcome(&p)
        .expect("followerless problem schedules");
    assert_eq!(o.schedule.captured_count(), 0);
    assert!(o.schedule.sequences.is_empty());
    validate_schedule(&p, &o.schedule).expect("followerless schedule validates");
}

#[test]
fn empty_problem_survives_zero_budget_fallback_path() {
    let p = problem(vec![], vec![]);
    let rs = ResilientScheduler::with_budget(Duration::ZERO);
    let o = rs.schedule_with_outcome(&p).expect("schedules");
    assert_eq!(o.schedule.captured_count(), 0);
    validate_schedule(&p, &o.schedule).expect("validates");
    // Trait path agrees.
    assert_eq!(rs.schedule(&p).expect("trait path"), o.schedule);
}

#[test]
fn all_followers_faulted_drops_everything_and_reassigns_nothing() {
    let p = problem(
        spread_tasks(6),
        vec![
            FollowerState::at_start(-100_000.0),
            FollowerState::at_start(-130_000.0),
        ],
    );
    let rs = ResilientScheduler::default();
    let o = rs.schedule_with_outcome(&p).expect("schedules");
    let planned = o.schedule.captured_count();
    assert!(planned > 0, "test premise: someone does work");

    // Both followers lost at pass start: every capture is dropped and
    // there is no survivor to take any of them.
    let repaired = rs
        .repair(&p, &o.schedule, &[(0, 0.0), (1, 0.0)])
        .expect("repair of total loss");
    assert_eq!(repaired.dropped_tasks, planned);
    assert_eq!(repaired.reassigned_tasks, 0);
    assert_eq!(repaired.schedule.captured_count(), 0);
    assert_eq!(repaired.schedule.total_value, 0.0);
    validate_schedule(&p, &repaired.schedule).expect("empty repaired schedule validates");
}

#[test]
fn repair_of_mid_pass_invalidated_schedule_restores_validity() {
    // A follower failing mid-pass leaves a schedule whose tail can no
    // longer be executed; repair must truncate at the onset, re-plan
    // onto the survivor, and return a schedule that validates again.
    let p = problem(
        spread_tasks(6),
        vec![
            FollowerState::at_start(-100_000.0),
            FollowerState::at_start(-130_000.0),
        ],
    );
    let rs = ResilientScheduler::default();
    let o = rs.schedule_with_outcome(&p).expect("schedules");
    let seq0 = &o.schedule.sequences[0];
    assert!(
        seq0.len() >= 2,
        "test premise: follower 0 has a tail to lose"
    );

    let onset = seq0[0].time_s + 0.1; // fails right after its first capture
    let repaired = rs.repair(&p, &o.schedule, &[(0, onset)]).expect("repair");
    // The pre-onset prefix survives untouched.
    assert_eq!(repaired.schedule.sequences[0], vec![seq0[0]]);
    assert_eq!(repaired.dropped_tasks, seq0.len() - 1);
    // Whatever was re-planned, the result is feasible end to end.
    validate_schedule(&p, &repaired.schedule).expect("repaired schedule validates");
    // Value bookkeeping was rebuilt from the surviving captures.
    let recomputed: f64 = repaired
        .schedule
        .captured_tasks()
        .iter()
        .map(|&j| p.tasks()[j].value)
        .sum();
    assert!((repaired.schedule.total_value - recomputed).abs() < 1e-9);
}

#[test]
fn repair_rejects_a_corrupted_schedule() {
    // Repair re-validates its output; a schedule corrupted before the
    // repair (a capture moved outside every window) must surface
    // ScheduleViolation instead of being silently returned.
    let p = problem(spread_tasks(3), vec![FollowerState::at_start(-100_000.0)]);
    let rs = ResilientScheduler::default();
    let mut o = rs.schedule_with_outcome(&p).expect("schedules");
    assert!(!o.schedule.sequences[0].is_empty());
    o.schedule.sequences[0][0].time_s = -1e9; // long before visibility
    let err = rs
        .repair(&p, &o.schedule, &[])
        .expect_err("corrupted schedule must not validate");
    assert!(matches!(err, CoreError::ScheduleViolation { .. }), "{err}");
}

#[test]
fn validate_rejects_duplicate_captures_across_followers() {
    let p = problem(
        spread_tasks(2),
        vec![
            FollowerState::at_start(-100_000.0),
            FollowerState::at_start(-100_000.0),
        ],
    );
    let o = ResilientScheduler::default()
        .schedule_with_outcome(&p)
        .expect("schedules");
    let mut corrupted = o.schedule.clone();
    // Duplicate follower 0's first capture onto follower 1.
    let Some(&cap) = corrupted.sequences[0].first() else {
        panic!("test premise: follower 0 captures something");
    };
    corrupted.sequences[1] = vec![Capture {
        task: cap.task,
        time_s: cap.time_s,
    }];
    let err = validate_schedule(&p, &corrupted).expect_err("duplicate capture must fail");
    assert!(matches!(err, CoreError::ScheduleViolation { .. }), "{err}");
}

#[test]
fn zero_budget_fallback_still_validates_under_load() {
    let tasks: Vec<TaskSpec> = (0..20)
        .map(|i| {
            TaskSpec::new(
                ((i * 37) % 160) as f64 * 1_000.0 - 80_000.0,
                20_000.0 + ((i * 13) % 90) as f64 * 1_500.0,
                1.0 + (i % 3) as f64,
            )
        })
        .collect();
    let p = problem(
        tasks,
        vec![
            FollowerState::at_start(-100_000.0),
            FollowerState::at_start(-120_000.0),
        ],
    );
    let o = ResilientScheduler::with_budget(Duration::ZERO)
        .schedule_with_outcome(&p)
        .expect("schedules");
    assert_eq!(o.solver, SolverChoice::Greedy);
    assert!(o.fallback.is_some());
    validate_schedule(&p, &o.schedule).expect("fallback schedule validates");
}
