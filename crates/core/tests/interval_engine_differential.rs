//! Differential suite gating the compiled access-interval engine
//! (DESIGN.md §13) against the legacy per-frame walk it replaced.
//!
//! `CoverageOptions::reference_frame_walk` keeps the original
//! frame-by-frame spatial-query path alive; every test here evaluates
//! the same seeded random scenario through both paths and requires the
//! reports to agree on every field except wall-clock timers
//! (`CoverageReport::same_outcome`). Scenarios sweep the features that
//! could plausibly diverge: imperfect recall, fault plans, leader and
//! follower failures, moving targets, recapture penalties, every
//! scheduler and clustering kind, every ILP solver tier (DESIGN.md
//! §15 — within a tier the solver is deterministic, so the engines
//! must agree under the sparse tier exactly as under the dense one),
//! and the pure-swath configurations.
//!
//! Runs on the `eagleeye-check` harness: replay a failure with
//! `EAGLEEYE_CHECK_SEED`, scale the budget with `EAGLEEYE_CHECK_CASES`.

use eagleeye_check::{check_cases, f64_range, prop_assert, u64_range, usize_range};
use eagleeye_core::clustering::ClusteringMethod;
use eagleeye_core::coverage::{
    ConstellationConfig, CoverageEvaluator, CoverageOptions, CoverageReport, DegradedMode,
    FailurePlan, ScenarioDelta, SchedulerKind,
};
use eagleeye_core::schedule::SolverTier;
use eagleeye_datasets::{Target, TargetSet};
use eagleeye_geo::GeodeticPoint;
use eagleeye_sim::{FaultKind, FaultPlan};
use std::sync::Arc;

const CASES: u32 = 12;

/// Deterministic jitter in `[-scale/2, scale/2]`, a pure function of
/// `(seed, i, salt)` — keeps workloads varied across cases but exactly
/// reproducible from the harness seed.
fn jitter(seed: u64, i: usize, salt: u64, scale: f64) -> f64 {
    let x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(salt)
        .wrapping_mul(0x94D0_49BB_1331_11EB);
    ((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * scale
}

/// Targets strung under the first passes of the RAAN-0 orbit so the
/// scenarios actually detect, cluster, schedule, and capture — a
/// globally-scattered workload would leave the hot paths idle.
fn targets_for(kind: usize, seed: u64) -> TargetSet {
    let chain = |n: usize, salt: u64| -> Vec<Target> {
        (0..n)
            .map(|i| {
                let lat = -50.0 + 100.0 * i as f64 / n as f64 + jitter(seed, i, salt, 2.0);
                let lon = jitter(seed, i, salt ^ 1, 3.0);
                Target::fixed(
                    GeodeticPoint::from_degrees(lat, lon, 0.0).expect("valid"),
                    1.0 + jitter(seed, i, salt ^ 2, 0.8),
                )
            })
            .collect()
    };
    match kind % 3 {
        // Dense static chain: the bulk scheduling workload.
        0 => chain(120, 10).into_iter().collect(),
        // Moving targets with existence windows: exercises per-frame
        // `position_at` and `exists_at` in the compiled membership
        // sweep exactly as in the legacy walk.
        1 => chain(60, 20)
            .into_iter()
            .enumerate()
            .map(|(i, mut t)| {
                t.motion = Some((
                    120.0 + jitter(seed, i, 30, 200.0).abs(),
                    jitter(seed, i, 31, std::f64::consts::TAU).abs(),
                ));
                t.appears_at_s = jitter(seed, i, 32, 1_200.0).abs();
                t.disappears_at_s = t.appears_at_s + 300.0 + jitter(seed, i, 33, 1_800.0).abs();
                t
            })
            .collect(),
        // Sparse chain: hits the empty-frame sweep paths.
        _ => chain(18, 40).into_iter().collect(),
    }
}

fn scheduler_for(kind: usize) -> SchedulerKind {
    // `Abb` is deliberately absent: it is a wall-clock-budgeted
    // anytime solver, so its schedules are not run-to-run
    // deterministic and no engine can reproduce them exactly.
    match kind % 3 {
        0 => SchedulerKind::Ilp,
        1 => SchedulerKind::Greedy,
        _ => SchedulerKind::Resilient,
    }
}

fn clustering_for(kind: usize) -> ClusteringMethod {
    match kind % 3 {
        0 => ClusteringMethod::Ilp,
        1 => ClusteringMethod::Greedy,
        _ => ClusteringMethod::None,
    }
}

/// ILP solver tier axis: both engines run the same deterministic
/// solver, so compiled-vs-reference identity must hold under every
/// tier, not just the dense default.
fn tier_for(kind: usize) -> SolverTier {
    match kind % 3 {
        0 => SolverTier::Dense,
        1 => SolverTier::Sparse,
        _ => SolverTier::Auto,
    }
}

/// Evaluates `config` over `targets` through both engines and asserts
/// timer-stripped equality — cold compile, warm memo replay, and the
/// legacy frame walk must all produce the same report.
fn assert_engines_agree(
    targets: &TargetSet,
    options: &CoverageOptions,
    config: &ConstellationConfig,
) -> (CoverageReport, CoverageReport) {
    let eval = CoverageEvaluator::new(targets, options.clone());
    let compiled = eval.evaluate(config).expect("compiled engine evaluation");
    let warm = eval.evaluate(config).expect("warm replay evaluation");
    assert!(
        warm.same_outcome(&compiled),
        "warm replay diverged for {config:?}:\ncold: {compiled:?}\nwarm: {warm:?}"
    );
    let reference = CoverageEvaluator::new(
        targets,
        CoverageOptions {
            reference_frame_walk: true,
            ..options.clone()
        },
    )
    .evaluate(config)
    .expect("reference frame-walk evaluation");
    assert!(
        compiled.same_outcome(&reference),
        "engines diverged for {config:?}:\ncompiled: {compiled:?}\nreference: {reference:?}"
    );
    (compiled, reference)
}

/// EagleEye leader/follower scenarios across schedulers, clustering
/// modes, recall, and recapture penalties.
#[test]
fn compiled_engine_matches_reference_frame_walk() {
    check_cases(
        CASES,
        "compiled_engine_matches_reference_frame_walk",
        (
            u64_range(0, u64::MAX),
            usize_range(0, 2),
            (usize_range(1, 3), usize_range(1, 2)),
            (usize_range(0, 2), usize_range(0, 2), usize_range(0, 2)),
            f64_range(0.55, 1.0),
            f64_range(-0.5, 1.0),
        ),
        |&(seed, tkind, (groups, followers), (skind, ckind, ikind), recall, recapture)| {
            let targets = targets_for(tkind, seed);
            let options = CoverageOptions {
                duration_s: 1_200.0,
                recall,
                seed,
                recapture_penalty: (recapture >= 0.0).then_some(recapture),
                ilp_tier: tier_for(ikind),
                ..CoverageOptions::default()
            };
            let config = ConstellationConfig::EagleEye {
                groups,
                followers_per_group: followers,
                scheduler: scheduler_for(skind),
                clustering: clustering_for(ckind),
            };
            assert_engines_agree(&targets, &options, &config);
            Ok(())
        },
    );
}

/// Fault plans and hard failures: outages, detector dropout, leader
/// failures, dead followers, both degraded modes.
#[test]
fn compiled_engine_matches_reference_under_faults() {
    check_cases(
        CASES,
        "compiled_engine_matches_reference_under_faults",
        (
            u64_range(0, u64::MAX),
            usize_range(0, 2),
            (usize_range(0, 3), f64_range(0.0, 1_000.0)),
            usize_range(0, 1),
            f64_range(0.6, 1.0),
        ),
        |&(seed, tkind, (fault_kind, fault_at), degraded, recall)| {
            let targets = targets_for(tkind, seed);
            let fault = match fault_kind {
                0 => FaultKind::FollowerOutage { follower: 0 },
                1 => FaultKind::LeaderOutage,
                2 => FaultKind::DetectorDropout {
                    false_negative_rate: 0.3,
                },
                _ => FaultKind::FollowerOutage { follower: 1 },
            };
            let options = CoverageOptions {
                duration_s: 1_200.0,
                recall,
                seed,
                failure: Some(FailurePlan {
                    fail_at_s: 600.0,
                    leader_failed: seed % 2 == 0,
                    failed_followers: if seed % 3 == 0 { vec![0] } else { vec![] },
                }),
                fault_plan: Some(Arc::new(FaultPlan::new(seed).with_fault(
                    fault,
                    fault_at,
                    fault_at + 700.0,
                ))),
                degraded_mode: if degraded == 0 {
                    DegradedMode::Naive
                } else {
                    DegradedMode::Resilient
                },
                ..CoverageOptions::default()
            };
            let config = ConstellationConfig::EagleEye {
                groups: 2,
                followers_per_group: 2,
                scheduler: SchedulerKind::Resilient,
                clustering: ClusteringMethod::Ilp,
            };
            assert_engines_agree(&targets, &options, &config);
            Ok(())
        },
    );
}

/// The pure-swath configurations run the compiled membership union.
#[test]
fn swath_configs_match_reference() {
    check_cases(
        CASES,
        "swath_configs_match_reference",
        (u64_range(0, u64::MAX), usize_range(0, 2), usize_range(1, 5)),
        |&(seed, tkind, satellites)| {
            let targets = targets_for(tkind, seed);
            let options = CoverageOptions {
                duration_s: 1_800.0,
                seed,
                ..CoverageOptions::default()
            };
            for config in [
                ConstellationConfig::LowResOnly { satellites },
                ConstellationConfig::HighResOnly { satellites },
            ] {
                let (compiled, _) = assert_engines_agree(&targets, &options, &config);
                prop_assert!(
                    compiled.frames_processed > 0,
                    "swath evaluation must walk frames"
                );
            }
            Ok(())
        },
    );
}

/// Parent→child scenario edits: a child scenario evaluated on a fork
/// of its parent's evaluator (sharing the compile cache and track
/// pool) must agree with the reference frame walk of the same child —
/// the sharing machinery of DESIGN.md §14 must be invisible to the
/// legacy engine too, not just to a cold compiled run.
#[test]
fn scenario_edits_match_reference_frame_walk() {
    check_cases(
        CASES,
        "scenario_edits_match_reference_frame_walk",
        (
            u64_range(0, u64::MAX),
            usize_range(0, 2),
            (usize_range(2, 3), usize_range(1, 2)),
            usize_range(0, 2),
            f64_range(0.6, 1.0),
        ),
        |&(seed, tkind, (groups, followers), skind, recall)| {
            let targets = targets_for(tkind, seed);
            let parent_cfg = ConstellationConfig::EagleEye {
                groups,
                followers_per_group: followers,
                scheduler: scheduler_for(skind),
                clustering: ClusteringMethod::Ilp,
            };
            let parent_opts = CoverageOptions {
                duration_s: 1_200.0,
                recall,
                seed,
                layout_slots: Some(groups + 1),
                fault_plan: Some(Arc::new(FaultPlan::new(seed).with_fault(
                    FaultKind::FollowerOutage { follower: 0 },
                    300.0,
                    500.0,
                ))),
                ..CoverageOptions::default()
            };
            let parent = CoverageEvaluator::new(&targets, parent_opts);
            parent.evaluate(&parent_cfg).expect("parent evaluation");

            // Add a follower, drop a follower, widen the parent's
            // fault window past its original end: each child runs on a
            // fork of the parent (inheriting shared tracks where the
            // digests allow) and must match the legacy frame walk.
            let edits = [
                ScenarioDelta::AddFollower,
                ScenarioDelta::RemoveFollower,
                ScenarioDelta::FaultWindow {
                    kind: FaultKind::FollowerOutage { follower: 0 },
                    start_s: 500.0,
                    end_s: 900.0,
                },
            ];
            for delta in &edits {
                let (child_cfg, child_opts) = delta
                    .apply(&parent_cfg, parent.options())
                    .expect("edit applies");
                let forked = parent
                    .fork_with(child_opts.clone())
                    .evaluate(&child_cfg)
                    .expect("forked child evaluation");
                let reference = CoverageEvaluator::new(
                    &targets,
                    CoverageOptions {
                        reference_frame_walk: true,
                        ..child_opts
                    },
                )
                .evaluate(&child_cfg)
                .expect("reference child evaluation");
                prop_assert!(
                    forked.same_outcome(&reference),
                    "forked child diverged from reference for {delta:?}:\
                     \nforked: {forked:?}\nreference: {reference:?}"
                );
            }
            Ok(())
        },
    );
}

/// A moved target changes the workload itself, which is outside the
/// delta machinery: compiled-program caches never span target sets, so
/// the edited workload gets fresh evaluators — and the compiled engine
/// must still match the reference walk on both sides of the move.
#[test]
fn moved_target_workloads_match_reference() {
    check_cases(
        CASES,
        "moved_target_workloads_match_reference",
        (
            u64_range(0, u64::MAX),
            usize_range(0, 99),
            f64_range(-4.0, 4.0),
        ),
        |&(seed, moved_idx, dlat)| {
            let before = targets_for(0, seed);
            // Move one target (same value, shifted position): a digest
            // keyed only on coarse workload identity would collide.
            let after: eagleeye_datasets::TargetSet = before
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let mut t = *t;
                    if i == moved_idx % before.len() {
                        t.position = GeodeticPoint::from_degrees(
                            (t.position.lat_deg() + dlat).clamp(-80.0, 80.0),
                            t.position.lon_deg(),
                            0.0,
                        )
                        .expect("valid moved target");
                    }
                    t
                })
                .collect();
            let options = CoverageOptions {
                duration_s: 1_200.0,
                seed,
                ..CoverageOptions::default()
            };
            let config = ConstellationConfig::eagleeye(2, 1);
            let (a, _) = assert_engines_agree(&before, &options, &config);
            let (b, _) = assert_engines_agree(&after, &options, &config);
            // The two workloads share totals by construction.
            prop_assert!(
                (a.total_value - b.total_value).abs() < 1e-9 && a.total == b.total,
                "moved-target workload changed its totals"
            );
            Ok(())
        },
    );
}

/// A warm evaluation (same evaluator, same config) replays the memo
/// and compiled tracks and must reproduce the cold report exactly;
/// the compile cache must actually register the reuse.
#[test]
fn warm_evaluation_reproduces_cold_report() {
    let targets = targets_for(0, 77);
    let options = CoverageOptions {
        duration_s: 1_800.0,
        recall: 0.8,
        seed: 77,
        ..CoverageOptions::default()
    };
    let config = ConstellationConfig::EagleEye {
        groups: 2,
        followers_per_group: 2,
        scheduler: SchedulerKind::Ilp,
        clustering: ClusteringMethod::Ilp,
    };
    let eval = CoverageEvaluator::new(&targets, options);
    let cold = eval.evaluate(&config).expect("cold evaluation");
    let stats_cold = eval.compile_stats();
    assert!(stats_cold.track_builds > 0, "cold run must compile tracks");
    assert_eq!(stats_cold.memo_hits, 0, "cold run cannot hit the memo");
    let warm = eval.evaluate(&config).expect("warm evaluation");
    let stats_warm = eval.compile_stats();
    assert!(
        warm.same_outcome(&cold),
        "warm replay diverged:\ncold: {cold:?}\nwarm: {warm:?}"
    );
    assert!(
        stats_warm.track_reuses > stats_cold.track_reuses,
        "warm run must reuse compiled tracks"
    );
    assert!(
        stats_warm.memo_hits > 0,
        "warm run must replay memoized horizon solves"
    );
    assert_eq!(
        stats_warm.track_builds, stats_cold.track_builds,
        "warm run must not recompile"
    );

    // A different config on the same evaluator must not reuse the
    // first config's scenario entry.
    let other = ConstellationConfig::EagleEye {
        groups: 2,
        followers_per_group: 2,
        scheduler: SchedulerKind::Greedy,
        clustering: ClusteringMethod::Ilp,
    };
    let greedy = eval.evaluate(&other).expect("greedy evaluation");
    assert!(
        eval.compile_stats().track_builds > stats_warm.track_builds,
        "a new config must compile its own tracks"
    );
    // And the greedy schedule genuinely differs from ILP here, which
    // would be masked if the memo leaked across configs.
    let _ = greedy;
}
