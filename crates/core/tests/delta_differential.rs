//! Differential suite gating incremental what-if re-evaluation
//! (DESIGN.md §14) against cold evaluation.
//!
//! Every case builds a seeded random parent scenario, evaluates it (so
//! the shared compile cache holds its tracks and memoized horizon
//! solves), applies a seeded random [`ScenarioDelta`], and evaluates
//! the child twice: incrementally on a [`fork_with`] sibling of the
//! parent (adopting shared tracks, replaying memos, re-solving only
//! dirty frames) and cold on a fresh evaluator. The two child runs must
//! agree on every report field except wall-clock timers
//! (`CoverageReport::same_outcome` — solver diagnostics and warm-start
//! counters included) and on every `core/*`, `ilp/*`, and `sim/*`
//! observability counter bit-for-bit. `orbit/*` counters are exempt by
//! design — eliding re-propagation is the point of sharing — as are
//! `exec/*` pool-shape counters, matching the threading contract.
//!
//! Cases additionally draw a solver tier (dense / sparse / auto,
//! DESIGN.md §15): the bit-identity contract holds within each tier,
//! and the tier is part of the horizon-memo digest so incremental
//! replays never cross tiers.
//!
//! Runs on the `eagleeye-check` harness: replay a failure with
//! `EAGLEEYE_CHECK_SEED`, scale the budget with `EAGLEEYE_CHECK_CASES`.
//!
//! [`fork_with`]: eagleeye_core::coverage::CoverageEvaluator::fork_with

use eagleeye_check::{check_cases, f64_range, u64_range, usize_range};
use eagleeye_core::clustering::ClusteringMethod;
use eagleeye_core::coverage::{
    ConstellationConfig, CoverageEvaluator, CoverageOptions, CoverageReport, DegradedMode,
    ScenarioDelta, SchedulerKind,
};
use eagleeye_core::schedule::SolverTier;
use eagleeye_datasets::{Target, TargetSet};
use eagleeye_geo::GeodeticPoint;
use eagleeye_obs::Metrics;
use eagleeye_sim::{FaultKind, FaultPlan};
use std::sync::Arc;

const CASES: u32 = 8;

/// Deterministic jitter in `[-scale/2, scale/2]`, a pure function of
/// `(seed, i, salt)`.
fn jitter(seed: u64, i: usize, salt: u64, scale: f64) -> f64 {
    let x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(salt)
        .wrapping_mul(0x94D0_49BB_1331_11EB);
    ((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * scale
}

/// Targets strung under the RAAN-0 ground track so the scenarios
/// actually detect, cluster, schedule, and capture.
fn targets_for(seed: u64) -> TargetSet {
    (0..100)
        .map(|i| {
            let lat = -50.0 + 100.0 * i as f64 / 100.0 + jitter(seed, i, 10, 2.0);
            let lon = jitter(seed, i, 11, 3.0);
            Target::fixed(
                GeodeticPoint::from_degrees(lat, lon, 0.0).expect("valid"),
                1.0 + jitter(seed, i, 12, 0.8),
            )
        })
        .collect()
}

fn scheduler_for(kind: usize) -> SchedulerKind {
    // `Abb` is wall-clock-budgeted and not run-to-run deterministic.
    match kind % 3 {
        0 => SchedulerKind::Ilp,
        1 => SchedulerKind::Greedy,
        _ => SchedulerKind::Resilient,
    }
}

fn clustering_for(kind: usize) -> ClusteringMethod {
    match kind % 3 {
        0 => ClusteringMethod::Ilp,
        1 => ClusteringMethod::Greedy,
        _ => ClusteringMethod::None,
    }
}

/// Solver-tier axis (DESIGN.md §15): the sparse presolved tier must
/// uphold the same cold-vs-delta bit-identity as the dense default —
/// within a tier the solver is fully deterministic, and the tier
/// participates in the horizon-memo digest so replays never cross
/// tiers.
fn tier_for(kind: usize) -> SolverTier {
    match kind % 3 {
        0 => SolverTier::Dense,
        1 => SolverTier::Sparse,
        _ => SolverTier::Auto,
    }
}

/// The delta under test, drawn from the case's choices. Structural
/// edits, parameter nudges, and every fault-window class are covered.
fn delta_for(kind: usize, p: f64, at_s: f64) -> ScenarioDelta {
    match kind {
        0 => ScenarioDelta::AddGroup,
        1 => ScenarioDelta::RemoveGroup,
        2 => ScenarioDelta::AddFollower,
        3 => ScenarioDelta::RemoveFollower,
        4 => ScenarioDelta::NudgeRecall(p),
        5 => ScenarioDelta::NudgeRecapture(Some(p)),
        6 => ScenarioDelta::FaultWindow {
            kind: FaultKind::FollowerOutage { follower: 0 },
            start_s: at_s,
            end_s: at_s + 500.0,
        },
        7 => ScenarioDelta::FaultWindow {
            kind: FaultKind::LeaderOutage,
            start_s: at_s,
            end_s: at_s + 400.0,
        },
        8 => ScenarioDelta::FaultWindow {
            kind: FaultKind::SlewDerate {
                rate_factor: 0.3 + 0.6 * p,
            },
            start_s: at_s,
            end_s: f64::INFINITY,
        },
        _ => ScenarioDelta::FaultWindow {
            kind: FaultKind::DetectorDropout {
                false_negative_rate: 0.5 * p,
            },
            start_s: at_s,
            end_s: at_s + 600.0,
        },
    }
}

/// Counters that must be bit-identical between a delta and a cold
/// child evaluation: everything except `orbit/*` (sharing legitimately
/// elides re-propagation) and `exec/*` (pool shape).
fn comparable_counters(metrics: &Metrics) -> Vec<(String, u64)> {
    metrics
        .snapshot()
        .counters()
        .filter(|(k, _)| !k.starts_with("orbit/") && !k.starts_with("exec/"))
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// Evaluates the child scenario incrementally (on a fork of `parent`,
/// with `threads` workers) and cold, and asserts the reports and the
/// comparable counters agree bit-for-bit.
fn assert_delta_matches_cold(
    parent: &CoverageEvaluator<'_>,
    targets: &TargetSet,
    child_cfg: &ConstellationConfig,
    child_opts: &CoverageOptions,
    threads: usize,
) -> CoverageReport {
    let delta_metrics = Metrics::enabled();
    let fork = parent.fork_with(CoverageOptions {
        threads,
        metrics: delta_metrics.clone(),
        ..child_opts.clone()
    });
    let delta_report = fork.evaluate(child_cfg).expect("delta evaluation");

    let cold_metrics = Metrics::enabled();
    let cold = CoverageEvaluator::new(
        targets,
        CoverageOptions {
            threads,
            metrics: cold_metrics.clone(),
            ..child_opts.clone()
        },
    );
    let cold_report = cold.evaluate(child_cfg).expect("cold child evaluation");

    assert!(
        delta_report.same_outcome(&cold_report),
        "delta diverged from cold at threads={threads} for {child_cfg:?}:\
         \ndelta: {delta_report:?}\ncold: {cold_report:?}"
    );
    assert_eq!(
        comparable_counters(&delta_metrics),
        comparable_counters(&cold_metrics),
        "observability counters diverged at threads={threads} for {child_cfg:?}"
    );
    delta_report
}

/// The tentpole property: for seeded random `(scenario, delta)` pairs
/// across schedulers, clustering modes, fault plans, and both layout
/// phasings, an incremental child evaluation is indistinguishable from
/// a cold one — report and counters — at 1 and 4 threads.
#[test]
fn delta_evaluation_is_bit_identical_to_cold() {
    // Guards against the suite passing vacuously on empty reports:
    // across the whole run, some cases must schedule and capture.
    let scheduled_cases = std::cell::Cell::new(0u32);
    check_cases(
        CASES,
        "delta_evaluation_is_bit_identical_to_cold",
        (
            u64_range(0, u64::MAX),
            (usize_range(2, 3), usize_range(1, 2)),
            (usize_range(0, 2), usize_range(0, 2), usize_range(0, 2)),
            f64_range(0.6, 1.0),
            usize_range(0, 9),
            f64_range(0.0, 1.0),
            f64_range(0.0, 900.0),
        ),
        |&(seed, (groups, followers), (skind, ckind, tkind), recall, dkind, dparam, at_s)| {
            let targets = targets_for(seed);
            let parent_cfg = ConstellationConfig::EagleEye {
                groups,
                followers_per_group: followers,
                scheduler: scheduler_for(skind),
                clustering: clustering_for(ckind),
            };
            let parent_opts = CoverageOptions {
                duration_s: 1_000.0,
                recall,
                seed,
                // Half the cases pin the layout with spare capacity
                // (maximal sharing for structural deltas); the rest
                // phase organically, exercising the pinned-child /
                // recompiled-child paths of `ScenarioDelta::apply`.
                layout_slots: (seed % 2 == 0).then_some(groups + 1),
                // A third of the cases start from an already-faulted
                // parent so `FaultWindow` appends rather than creates.
                fault_plan: (seed % 3 == 0).then(|| {
                    Arc::new(FaultPlan::new(seed).with_fault(
                        FaultKind::FollowerOutage { follower: 0 },
                        200.0,
                        600.0,
                    ))
                }),
                degraded_mode: if seed % 2 == 0 {
                    DegradedMode::Resilient
                } else {
                    DegradedMode::Naive
                },
                ilp_tier: tier_for(tkind),
                ..CoverageOptions::default()
            };
            let delta = delta_for(dkind, dparam, at_s);

            let parent = CoverageEvaluator::new(&targets, parent_opts);
            parent.evaluate(&parent_cfg).expect("parent evaluation");

            let (child_cfg, child_opts) = delta
                .apply(&parent_cfg, parent.options())
                .expect("delta applies to an EagleEye parent");
            let single = assert_delta_matches_cold(&parent, &targets, &child_cfg, &child_opts, 1);
            let multi = assert_delta_matches_cold(&parent, &targets, &child_cfg, &child_opts, 4);
            assert!(
                single.same_outcome(&multi),
                "delta evaluation diverged across thread counts:\
                 \nthreads=1: {single:?}\nthreads=4: {multi:?}"
            );
            if single.scheduler_calls > 0 && single.captured > 0 {
                scheduled_cases.set(scheduled_cases.get() + 1);
            }
            Ok(())
        },
    );
    assert!(
        scheduled_cases.get() > 0,
        "no case scheduled or captured anything — the generators have drifted off the hot path"
    );
}

/// Structural shrink under pinned layout must actually reuse the
/// parent's work — the differential guarantee would be vacuous if the
/// incremental path silently recompiled everything.
#[test]
fn pinned_remove_group_delta_reuses_parent_work() {
    let targets = targets_for(42);
    let parent_cfg = ConstellationConfig::EagleEye {
        groups: 3,
        followers_per_group: 1,
        scheduler: SchedulerKind::Ilp,
        clustering: ClusteringMethod::Ilp,
    };
    let parent_opts = CoverageOptions {
        duration_s: 1_200.0,
        seed: 42,
        layout_slots: Some(3),
        ..CoverageOptions::default()
    };
    let parent = CoverageEvaluator::new(&targets, parent_opts);
    parent.evaluate(&parent_cfg).expect("parent evaluation");

    let (report, stats) = parent
        .what_if(&parent_cfg, &ScenarioDelta::RemoveGroup)
        .expect("what-if evaluation");
    assert_eq!(
        stats.track_shares, 2,
        "both surviving leader tracks must be adopted: {stats:?}"
    );
    assert_eq!(
        stats.track_builds, 0,
        "nothing should compile from scratch: {stats:?}"
    );
    assert!(
        stats.memo_hits > 0,
        "surviving frames must replay memoized solves: {stats:?}"
    );

    let (child_cfg, child_opts) = ScenarioDelta::RemoveGroup
        .apply(&parent_cfg, parent.options())
        .expect("apply");
    let cold = CoverageEvaluator::new(&targets, child_opts)
        .evaluate(&child_cfg)
        .expect("cold child");
    assert!(
        report.same_outcome(&cold),
        "reused child diverged:\ndelta: {report:?}\ncold: {cold:?}"
    );
}

/// Pinned sparse-tier case: regardless of what the random axis above
/// draws, at least one delta-vs-cold comparison must run the sparse
/// presolved tier end to end, exercise it (sparse-solve counters are
/// nonzero), and stay bit-identical at 1 and 4 threads.
#[test]
fn sparse_tier_delta_matches_cold() {
    let targets = targets_for(7);
    let parent_cfg = ConstellationConfig::EagleEye {
        groups: 2,
        followers_per_group: 2,
        scheduler: SchedulerKind::Ilp,
        clustering: ClusteringMethod::Ilp,
    };
    let parent_opts = CoverageOptions {
        duration_s: 1_000.0,
        seed: 7,
        ilp_tier: SolverTier::Sparse,
        ..CoverageOptions::default()
    };
    let parent = CoverageEvaluator::new(&targets, parent_opts);
    parent.evaluate(&parent_cfg).expect("parent evaluation");

    let (child_cfg, child_opts) = ScenarioDelta::AddFollower
        .apply(&parent_cfg, parent.options())
        .expect("apply");
    let single = assert_delta_matches_cold(&parent, &targets, &child_cfg, &child_opts, 1);
    let multi = assert_delta_matches_cold(&parent, &targets, &child_cfg, &child_opts, 4);
    assert!(
        single.same_outcome(&multi),
        "sparse-tier delta diverged across thread counts:\
         \nthreads=1: {single:?}\nthreads=4: {multi:?}"
    );
    assert!(
        single.scheduler_calls > 0 && single.captured > 0,
        "the pinned sparse scenario must actually schedule and capture: {single:?}"
    );
    assert!(
        single.ilp_sparse_solves > 0,
        "the sparse tier must actually run (ilp/sparse_solves > 0): {single:?}"
    );
}
