use crate::{Adacs, Camera, CoreError};

/// The full sensing configuration of one leader-follower group: cameras,
/// actuation, orbit geometry, and timing — everything the scheduler and
/// coverage evaluator need (paper §5.3).
///
/// # Example
///
/// ```
/// use eagleeye_core::SensingSpec;
///
/// let spec = SensingSpec::paper_default();
/// assert_eq!(spec.altitude_m, 475_000.0);
/// // Off-nadir reach: 475 km * tan(11 deg) ≈ 92 km of cross-track range.
/// assert!((spec.max_cross_track_m() / 1000.0 - 92.3).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensingSpec {
    /// Leader (wide, low-resolution) camera.
    pub low_res: Camera,
    /// Follower (narrow, high-resolution) camera.
    pub high_res: Camera,
    /// Maximum off-nadir pointing angle, radians (paper: 11°).
    pub theta_max_rad: f64,
    /// Follower actuation model.
    pub adacs: Adacs,
    /// Orbit altitude, meters (paper: 475 km).
    pub altitude_m: f64,
    /// Ground speed of the subsatellite point, m/s (paper: ~7.5 km/s).
    pub ground_speed_m_s: f64,
    /// Leader frame capture cadence, seconds (paper: 15 s).
    pub frame_cadence_s: f64,
}

impl SensingSpec {
    /// The paper's §5.3 configuration.
    pub fn paper_default() -> Self {
        SensingSpec {
            low_res: Camera::paper_low_res(),
            high_res: Camera::paper_high_res(),
            theta_max_rad: 11.0_f64.to_radians(),
            adacs: Adacs::paper_default(),
            altitude_m: 475_000.0,
            ground_speed_m_s: 7_100.0,
            frame_cadence_s: 15.0,
        }
    }

    /// Replaces the ADACS (for the Fig. 11b slew-rate sweep).
    pub fn with_adacs(mut self, adacs: Adacs) -> Self {
        self.adacs = adacs;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for non-positive altitude,
    /// speed, cadence, or an off-nadir limit outside `(0°, 60°)`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.altitude_m > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "altitude_m",
                value: self.altitude_m,
            });
        }
        if !(self.ground_speed_m_s > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "ground_speed_m_s",
                value: self.ground_speed_m_s,
            });
        }
        if !(self.frame_cadence_s > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "frame_cadence_s",
                value: self.frame_cadence_s,
            });
        }
        if !(self.theta_max_rad > 0.0 && self.theta_max_rad < 60.0_f64.to_radians()) {
            return Err(CoreError::InvalidParameter {
                name: "theta_max_rad",
                value: self.theta_max_rad,
            });
        }
        Ok(())
    }

    /// Maximum ground distance from nadir that remains within the
    /// off-nadir cone: `altitude · tan(θmax)` (paper Eq. 2 geometry).
    #[inline]
    pub fn max_cross_track_m(&self) -> f64 {
        self.altitude_m * self.theta_max_rad.tan()
    }

    /// Along-track length of one leader frame (contiguous ground-track
    /// tiling at the capture cadence).
    #[inline]
    pub fn frame_length_m(&self) -> f64 {
        self.ground_speed_m_s * self.frame_cadence_s
    }

    /// Upper bound on the rotation between any two valid pointings:
    /// both are within `θmax` of nadir, so their separation is at most
    /// `2·θmax`. Used to bound opportunity-graph arcs.
    #[inline]
    pub fn max_pointing_separation_rad(&self) -> f64 {
        2.0 * self.theta_max_rad
    }
}

impl Default for SensingSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        SensingSpec::paper_default().validate().unwrap();
    }

    #[test]
    fn off_nadir_reach_matches_geometry() {
        // 475 km * tan(11°) ≈ 92.3 km.
        let s = SensingSpec::paper_default();
        assert!((s.max_cross_track_m() - 92_330.0).abs() < 500.0);
    }

    #[test]
    fn frame_length_tiles_the_track() {
        let s = SensingSpec::paper_default();
        assert!((s.frame_length_m() - 7_100.0 * 15.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = SensingSpec::paper_default();
        s.altitude_m = -1.0;
        assert!(s.validate().is_err());
        let mut s = SensingSpec::paper_default();
        s.theta_max_rad = 2.0; // > 60 degrees
        assert!(s.validate().is_err());
        let mut s = SensingSpec::paper_default();
        s.frame_cadence_s = 0.0;
        assert!(s.validate().is_err());
    }
}
