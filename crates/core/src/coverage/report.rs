use std::time::Duration;

/// Result of a coverage evaluation run.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CoverageReport {
    /// Distinct targets captured in high-resolution imagery (for
    /// Low-Res Only: targets that fell inside the low-resolution swath).
    pub captured: usize,
    /// Total targets in the workload.
    pub total: usize,
    /// Sum of captured targets' priority values.
    pub captured_value: f64,
    /// Sum of all targets' priority values.
    pub total_value: f64,
    /// Leader frames processed.
    pub frames_processed: usize,
    /// Frames containing at least one target.
    pub frames_with_targets: usize,
    /// Detected-target count per nonempty frame (the paper's Fig. 12b
    /// distribution).
    pub per_frame_target_counts: Vec<usize>,
    /// Cluster count per nonempty frame (after target clustering).
    pub per_frame_cluster_counts: Vec<usize>,
    /// Number of scheduler invocations.
    pub scheduler_calls: usize,
    /// Total wall-clock time spent in the scheduler.
    pub scheduler_time: Duration,
    /// Total wall-clock time spent in clustering.
    pub clustering_time: Duration,
    /// High-resolution captures commanded.
    pub captures_commanded: usize,
    /// Horizons scheduled by the exact ILP within budget (only counted
    /// under [`SchedulerKind::Resilient`](super::SchedulerKind)).
    pub ilp_horizons: usize,
    /// Horizons that fell back to the greedy solver (deadline,
    /// iteration cap, dominance, or solver error).
    pub greedy_fallbacks: usize,
    /// Of those, fallbacks caused by the per-horizon wall-clock budget.
    pub deadline_fallbacks: usize,
    /// Mid-pass follower failures for which a schedule repair ran.
    pub repairs_attempted: usize,
    /// Tasks dropped from failed followers' sequences mid-pass.
    pub tasks_dropped_by_failures: usize,
    /// Of those, tasks successfully re-planned onto survivors.
    pub tasks_reassigned: usize,
    /// Commanded captures lost at execution because the assigned
    /// follower was out of service.
    pub captures_lost_to_faults: usize,
    /// Frames during which an injected fault kept the leader down.
    pub frames_leader_down: usize,
}

impl CoverageReport {
    /// Fraction of targets captured, in `[0, 1]`; zero for an empty
    /// workload.
    pub fn coverage_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.captured as f64 / self.total as f64
        }
    }

    /// Value-weighted coverage: captured priority mass over total
    /// priority mass (the quantity the scheduler's objective maximizes).
    pub fn value_fraction(&self) -> f64 {
        if self.total_value <= 0.0 {
            0.0
        } else {
            self.captured_value / self.total_value
        }
    }

    /// Mean scheduler latency per invocation.
    pub fn mean_scheduler_latency(&self) -> Duration {
        if self.scheduler_calls == 0 {
            Duration::ZERO
        } else {
            self.scheduler_time / self.scheduler_calls as u32
        }
    }

    /// Folds a partial report (one leader pass) into this one: counters
    /// and timers are summed, per-frame series appended in call order.
    ///
    /// Capture totals (`captured`, `total`, `captured_value`,
    /// `total_value`) are deliberately left alone — captures are marked
    /// idempotently in a shared (or merged) bitmap, so summing per-pass
    /// counts would double-count targets seen by several leaders. The
    /// evaluator derives them from the final bitmap instead.
    ///
    /// Parallel evaluation merges partial reports in leader order, so a
    /// multi-threaded run produces a report identical to a sequential
    /// one (modulo the wall-clock `*_time` fields).
    pub fn absorb(&mut self, part: CoverageReport) {
        self.frames_processed += part.frames_processed;
        self.frames_with_targets += part.frames_with_targets;
        self.per_frame_target_counts
            .extend(part.per_frame_target_counts);
        self.per_frame_cluster_counts
            .extend(part.per_frame_cluster_counts);
        self.scheduler_calls += part.scheduler_calls;
        self.scheduler_time += part.scheduler_time;
        self.clustering_time += part.clustering_time;
        self.captures_commanded += part.captures_commanded;
        self.ilp_horizons += part.ilp_horizons;
        self.greedy_fallbacks += part.greedy_fallbacks;
        self.deadline_fallbacks += part.deadline_fallbacks;
        self.repairs_attempted += part.repairs_attempted;
        self.tasks_dropped_by_failures += part.tasks_dropped_by_failures;
        self.tasks_reassigned += part.tasks_reassigned;
        self.captures_lost_to_faults += part.captures_lost_to_faults;
        self.frames_leader_down += part.frames_leader_down;
    }

    /// True when two reports agree on everything except the wall-clock
    /// timing fields (`scheduler_time`, `clustering_time`), which vary
    /// run to run even for identical work. This is the determinism
    /// contract checked across thread counts.
    pub fn same_outcome(&self, other: &CoverageReport) -> bool {
        let strip = |r: &CoverageReport| CoverageReport {
            scheduler_time: Duration::ZERO,
            clustering_time: Duration::ZERO,
            ..r.clone()
        };
        strip(self) == strip(other)
    }

    /// Fraction of nonempty frames with more than `threshold` detected
    /// targets (the paper's Fig. 12b observation: up to 32 % of images
    /// hold more than 19 targets).
    pub fn frames_above(&self, threshold: usize) -> f64 {
        if self.per_frame_target_counts.is_empty() {
            return 0.0;
        }
        let n = self
            .per_frame_target_counts
            .iter()
            .filter(|&&c| c > threshold)
            .count();
        n as f64 / self.per_frame_target_counts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_handles_empty_workload() {
        assert_eq!(CoverageReport::default().coverage_fraction(), 0.0);
    }

    #[test]
    fn fraction_and_frames_above() {
        let r = CoverageReport {
            captured: 30,
            total: 100,
            per_frame_target_counts: vec![5, 25, 40, 2],
            ..CoverageReport::default()
        };
        assert!((r.coverage_fraction() - 0.3).abs() < 1e-12);
        assert!((r.frames_above(19) - 0.5).abs() < 1e-12);
        assert_eq!(r.frames_above(1000), 0.0);
    }

    #[test]
    fn mean_latency_guards_division() {
        assert_eq!(
            CoverageReport::default().mean_scheduler_latency(),
            Duration::ZERO
        );
    }

    #[test]
    fn absorb_sums_counters_and_preserves_capture_totals() {
        let mut acc = CoverageReport {
            captured: 7,
            total: 10,
            frames_processed: 3,
            per_frame_target_counts: vec![1],
            scheduler_calls: 2,
            scheduler_time: Duration::from_millis(5),
            ..CoverageReport::default()
        };
        acc.absorb(CoverageReport {
            captured: 99, // must be ignored
            frames_processed: 4,
            per_frame_target_counts: vec![2, 3],
            scheduler_calls: 1,
            scheduler_time: Duration::from_millis(7),
            greedy_fallbacks: 2,
            ..CoverageReport::default()
        });
        assert_eq!(acc.captured, 7);
        assert_eq!(acc.total, 10);
        assert_eq!(acc.frames_processed, 7);
        assert_eq!(acc.per_frame_target_counts, vec![1, 2, 3]);
        assert_eq!(acc.scheduler_calls, 3);
        assert_eq!(acc.scheduler_time, Duration::from_millis(12));
        assert_eq!(acc.greedy_fallbacks, 2);
    }

    #[test]
    fn same_outcome_ignores_only_timing() {
        let a = CoverageReport {
            captured: 4,
            scheduler_time: Duration::from_millis(3),
            clustering_time: Duration::from_millis(1),
            ..CoverageReport::default()
        };
        let mut b = a.clone();
        b.scheduler_time = Duration::from_secs(9);
        b.clustering_time = Duration::ZERO;
        assert!(a.same_outcome(&b));
        b.captured = 5;
        assert!(!a.same_outcome(&b));
    }

    #[test]
    fn value_fraction_weighs_priorities() {
        let r = CoverageReport {
            captured: 1,
            total: 2,
            captured_value: 3.0,
            total_value: 4.0,
            ..CoverageReport::default()
        };
        assert!((r.coverage_fraction() - 0.5).abs() < 1e-12);
        assert!((r.value_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(CoverageReport::default().value_fraction(), 0.0);
    }
}
