use crate::schedule::IlpRunStats;
use eagleeye_harden::{ByteReader, ByteWriter, CodecError};
use eagleeye_obs::Metrics;
use std::time::Duration;

/// Version byte leading every [`CoverageReport::to_bytes`] payload.
/// Version 2 appended the ILP warm-start counters; version 3 appended
/// the solver-tier counters (hints, sparse solves, presolve).
const REPORT_CODEC_VERSION: u8 = 3;

/// Result of a coverage evaluation run.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CoverageReport {
    /// Distinct targets captured in high-resolution imagery (for
    /// Low-Res Only: targets that fell inside the low-resolution swath).
    pub captured: usize,
    /// Total targets in the workload.
    pub total: usize,
    /// Sum of captured targets' priority values.
    pub captured_value: f64,
    /// Sum of all targets' priority values.
    pub total_value: f64,
    /// Leader frames processed.
    pub frames_processed: usize,
    /// Frames containing at least one target.
    pub frames_with_targets: usize,
    /// Detected-target count per nonempty frame (the paper's Fig. 12b
    /// distribution).
    pub per_frame_target_counts: Vec<usize>,
    /// Cluster count per nonempty frame (after target clustering).
    pub per_frame_cluster_counts: Vec<usize>,
    /// Number of scheduler invocations.
    pub scheduler_calls: usize,
    /// Total wall-clock time spent in the scheduler.
    pub scheduler_time: Duration,
    /// Total wall-clock time spent in clustering.
    pub clustering_time: Duration,
    /// High-resolution captures commanded.
    pub captures_commanded: usize,
    /// Horizons scheduled by the exact ILP within budget (only counted
    /// under [`SchedulerKind::Resilient`](super::SchedulerKind)).
    pub ilp_horizons: usize,
    /// Horizons that fell back to the greedy solver (deadline,
    /// iteration cap, dominance, or solver error).
    pub greedy_fallbacks: usize,
    /// Of those, fallbacks caused by the per-horizon wall-clock budget.
    pub deadline_fallbacks: usize,
    /// Mid-pass follower failures for which a schedule repair ran.
    pub repairs_attempted: usize,
    /// Tasks dropped from failed followers' sequences mid-pass.
    pub tasks_dropped_by_failures: usize,
    /// Of those, tasks successfully re-planned onto survivors.
    pub tasks_reassigned: usize,
    /// Commanded captures lost at execution because the assigned
    /// follower was out of service.
    pub captures_lost_to_faults: usize,
    /// Frames during which an injected fault kept the leader down.
    pub frames_leader_down: usize,
    /// Total wall-clock time spent batch-propagating orbits.
    pub propagate_time: Duration,
    /// Total wall-clock time spent in the detection model (recorded
    /// only when the evaluation carries enabled
    /// [`Metrics`](eagleeye_obs::Metrics); zero otherwise so the
    /// per-frame clock reads cost nothing in production sweeps).
    pub detect_time: Duration,
    /// ILP subproblems attempted, summed over every horizon that ran
    /// the exact solver (under both `SchedulerKind::Ilp` and the
    /// resilient wrapper).
    pub ilp_subproblems: usize,
    /// Branch-and-bound nodes whose LP relaxation was solved.
    pub ilp_nodes_explored: usize,
    /// Branch-and-bound nodes discarded by the incumbent bound.
    pub ilp_nodes_pruned: usize,
    /// Total simplex iterations (bound flips included).
    pub ilp_lp_iterations: usize,
    /// Total basis-changing simplex pivots (`<= ilp_lp_iterations`).
    pub ilp_lp_pivots: usize,
    /// Incumbent replacements across all branch-and-bound runs.
    pub ilp_incumbent_updates: usize,
    /// ILP subproblems abandoned on the wall-clock deadline.
    pub ilp_deadline_hits: usize,
    /// ILP subproblems abandoned on the simplex iteration cap.
    pub ilp_iteration_limit_hits: usize,
    /// Branch-and-bound nodes solved from a warm-started parent basis.
    pub ilp_warm_starts: usize,
    /// Nodes whose warm basis was rejected and fell back to a cold
    /// solve.
    pub ilp_warm_rejects: usize,
    /// Incumbent hints accepted by the MILP solver across all horizons
    /// (zero on the memoized what-if path, which never passes hints).
    pub ilp_hints_accepted: usize,
    /// ILP subproblems solved on the sparse tier (zero under the
    /// dense default, keeping legacy digests byte-identical).
    pub ilp_sparse_solves: usize,
    /// Variables eliminated by presolve before the sparse searches.
    pub ilp_presolve_vars_eliminated: usize,
    /// Constraint rows removed by presolve before the sparse searches.
    pub ilp_presolve_rows_removed: usize,
    /// True when the crash-safe run layer stopped this evaluation early
    /// (deadline exceeded or shutdown requested) and the report covers
    /// only the leader passes that finished. Anytime results: every
    /// field is still internally consistent, just partial.
    pub degraded: bool,
    /// Leader passes whose partial results are merged into this report.
    /// Equals [`leader_passes_total`](Self::leader_passes_total) for a
    /// complete run.
    pub leader_passes_completed: usize,
    /// Leader passes the evaluated scenario decomposes into (zero for
    /// swath-membership configurations, which have no leader passes).
    pub leader_passes_total: usize,
}

impl CoverageReport {
    /// An empty report whose per-frame series are preallocated for a
    /// horizon of `frames` frames, so a leader pass never regrows them
    /// (the series gain at most one entry per frame).
    pub fn with_frame_capacity(frames: usize) -> Self {
        CoverageReport {
            per_frame_target_counts: Vec::with_capacity(frames),
            per_frame_cluster_counts: Vec::with_capacity(frames),
            ..Default::default()
        }
    }

    /// Fraction of targets captured, in `[0, 1]`; zero for an empty
    /// workload.
    pub fn coverage_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.captured as f64 / self.total as f64
        }
    }

    /// Value-weighted coverage: captured priority mass over total
    /// priority mass (the quantity the scheduler's objective maximizes).
    pub fn value_fraction(&self) -> f64 {
        if self.total_value <= 0.0 {
            0.0
        } else {
            self.captured_value / self.total_value
        }
    }

    /// Mean scheduler latency per invocation.
    pub fn mean_scheduler_latency(&self) -> Duration {
        if self.scheduler_calls == 0 {
            Duration::ZERO
        } else {
            self.scheduler_time / self.scheduler_calls as u32
        }
    }

    /// Folds a partial report (one leader pass) into this one: counters
    /// and timers are summed, per-frame series appended in call order.
    ///
    /// Capture totals (`captured`, `total`, `captured_value`,
    /// `total_value`) are deliberately left alone — captures are marked
    /// idempotently in a shared (or merged) bitmap, so summing per-pass
    /// counts would double-count targets seen by several leaders. The
    /// evaluator derives them from the final bitmap instead.
    ///
    /// Parallel evaluation merges partial reports in leader order, so a
    /// multi-threaded run produces a report identical to a sequential
    /// one (modulo the wall-clock `*_time` fields).
    // eagleeye-lint: fold-of(CoverageReport)
    // eagleeye-lint: fold-allow(CoverageReport::captured, CoverageReport::total, CoverageReport::captured_value, CoverageReport::total_value): capture totals are derived from the merged bitmap after all passes fold in — summing per-pass counts would double-count shared targets
    // eagleeye-lint: fold-allow(CoverageReport::degraded, CoverageReport::leader_passes_completed, CoverageReport::leader_passes_total): run-level state owned by the hardened runner, set once on the merged report, never summed across passes
    pub fn absorb(&mut self, part: CoverageReport) {
        self.frames_processed += part.frames_processed;
        self.frames_with_targets += part.frames_with_targets;
        self.per_frame_target_counts
            .extend(part.per_frame_target_counts);
        self.per_frame_cluster_counts
            .extend(part.per_frame_cluster_counts);
        self.scheduler_calls += part.scheduler_calls;
        self.scheduler_time += part.scheduler_time;
        self.clustering_time += part.clustering_time;
        self.captures_commanded += part.captures_commanded;
        self.ilp_horizons += part.ilp_horizons;
        self.greedy_fallbacks += part.greedy_fallbacks;
        self.deadline_fallbacks += part.deadline_fallbacks;
        self.repairs_attempted += part.repairs_attempted;
        self.tasks_dropped_by_failures += part.tasks_dropped_by_failures;
        self.tasks_reassigned += part.tasks_reassigned;
        self.captures_lost_to_faults += part.captures_lost_to_faults;
        self.frames_leader_down += part.frames_leader_down;
        self.propagate_time += part.propagate_time;
        self.detect_time += part.detect_time;
        self.ilp_subproblems += part.ilp_subproblems;
        self.ilp_nodes_explored += part.ilp_nodes_explored;
        self.ilp_nodes_pruned += part.ilp_nodes_pruned;
        self.ilp_lp_iterations += part.ilp_lp_iterations;
        self.ilp_lp_pivots += part.ilp_lp_pivots;
        self.ilp_incumbent_updates += part.ilp_incumbent_updates;
        self.ilp_deadline_hits += part.ilp_deadline_hits;
        self.ilp_iteration_limit_hits += part.ilp_iteration_limit_hits;
        self.ilp_warm_starts += part.ilp_warm_starts;
        self.ilp_warm_rejects += part.ilp_warm_rejects;
        self.ilp_hints_accepted += part.ilp_hints_accepted;
        self.ilp_sparse_solves += part.ilp_sparse_solves;
        self.ilp_presolve_vars_eliminated += part.ilp_presolve_vars_eliminated;
        self.ilp_presolve_rows_removed += part.ilp_presolve_rows_removed;
    }

    /// Folds one horizon's ILP solver diagnostics into the report.
    // eagleeye-lint: fold-of(IlpRunStats)
    // eagleeye-lint: fold-allow(IlpRunStats::greedy_dominated): a per-horizon verdict, not a summable counter — the resilient wrapper folds it into `greedy_fallbacks` instead
    pub fn add_ilp_stats(&mut self, stats: &IlpRunStats) {
        self.ilp_subproblems += stats.subproblems;
        self.ilp_nodes_explored += stats.nodes_explored;
        self.ilp_nodes_pruned += stats.nodes_pruned;
        self.ilp_lp_iterations += stats.lp_iterations;
        self.ilp_lp_pivots += stats.lp_pivots;
        self.ilp_incumbent_updates += stats.incumbent_updates;
        self.ilp_deadline_hits += stats.deadline_hits;
        self.ilp_iteration_limit_hits += stats.iteration_limit_hits;
        self.ilp_warm_starts += stats.warm_starts;
        self.ilp_warm_rejects += stats.warm_rejects;
        self.ilp_hints_accepted += stats.hints_accepted;
        self.ilp_sparse_solves += stats.sparse_solves;
        self.ilp_presolve_vars_eliminated += stats.presolve_vars_eliminated;
        self.ilp_presolve_rows_removed += stats.presolve_rows_removed;
    }

    /// Mirrors the report into a metrics registry under the `core/*`
    /// and `ilp/*` key namespaces (see DESIGN.md §10). A no-op when
    /// `metrics` is disabled. Counter and histogram values are exact
    /// integers derived from the deterministic report fields; only the
    /// `core/evaluate/*` timers vary run to run.
    // eagleeye-lint: fold-of(CoverageReport)
    // eagleeye-lint: fold-allow(CoverageReport::total, CoverageReport::captured_value, CoverageReport::total_value): workload denominators, not run activity — they belong to the scenario and would corrupt additive counters when several evaluations share one registry
    // eagleeye-lint: fold-allow(CoverageReport::degraded, CoverageReport::leader_passes_completed, CoverageReport::leader_passes_total): mirrored as `harden/*` gauges by the hardened runner, which owns that namespace
    pub fn record_metrics(&self, metrics: &Metrics) {
        if !metrics.is_enabled() {
            return;
        }
        metrics.incr("core/evaluations");
        metrics.add("core/frames_processed", self.frames_processed as u64);
        metrics.add("core/frames_with_targets", self.frames_with_targets as u64);
        metrics.add("core/scheduler_calls", self.scheduler_calls as u64);
        metrics.add("core/captures_commanded", self.captures_commanded as u64);
        metrics.add("core/captured_targets", self.captured as u64);
        metrics.add("core/ilp_horizons", self.ilp_horizons as u64);
        metrics.add("core/greedy_fallbacks", self.greedy_fallbacks as u64);
        metrics.add("core/deadline_fallbacks", self.deadline_fallbacks as u64);
        metrics.add("core/repairs_attempted", self.repairs_attempted as u64);
        metrics.add(
            "core/tasks_dropped_by_failures",
            self.tasks_dropped_by_failures as u64,
        );
        metrics.add("core/tasks_reassigned", self.tasks_reassigned as u64);
        metrics.add(
            "core/captures_lost_to_faults",
            self.captures_lost_to_faults as u64,
        );
        metrics.add("core/frames_leader_down", self.frames_leader_down as u64);
        metrics.add("ilp/subproblems", self.ilp_subproblems as u64);
        metrics.add("ilp/nodes_explored", self.ilp_nodes_explored as u64);
        metrics.add("ilp/nodes_pruned", self.ilp_nodes_pruned as u64);
        metrics.add("ilp/lp_iterations", self.ilp_lp_iterations as u64);
        metrics.add("ilp/lp_pivots", self.ilp_lp_pivots as u64);
        metrics.add("ilp/incumbent_updates", self.ilp_incumbent_updates as u64);
        metrics.add("ilp/deadline_hits", self.ilp_deadline_hits as u64);
        metrics.add(
            "ilp/iteration_limit_hits",
            self.ilp_iteration_limit_hits as u64,
        );
        metrics.add("ilp/warm_starts", self.ilp_warm_starts as u64);
        metrics.add("ilp/warm_rejects", self.ilp_warm_rejects as u64);
        metrics.add("ilp/hints_accepted", self.ilp_hints_accepted as u64);
        metrics.add("ilp/sparse_solves", self.ilp_sparse_solves as u64);
        metrics.add(
            "ilp/presolve_vars_eliminated",
            self.ilp_presolve_vars_eliminated as u64,
        );
        metrics.add(
            "ilp/presolve_rows_removed",
            self.ilp_presolve_rows_removed as u64,
        );
        const FRAME_BUCKETS: &[u64] = &[1, 2, 5, 10, 20, 50];
        for &n in &self.per_frame_target_counts {
            metrics.observe("core/frame_targets", n as u64, FRAME_BUCKETS);
        }
        for &n in &self.per_frame_cluster_counts {
            metrics.observe("core/frame_clusters", n as u64, FRAME_BUCKETS);
        }
        metrics.record_duration("core/evaluate/propagate", self.propagate_time);
        metrics.record_duration("core/evaluate/detect", self.detect_time);
        metrics.record_duration("core/evaluate/cluster", self.clustering_time);
        metrics.record_duration("core/evaluate/schedule", self.scheduler_time);
    }

    /// True when two reports agree on everything except the wall-clock
    /// timing fields (`scheduler_time`, `clustering_time`,
    /// `propagate_time`, `detect_time`), which vary run to run even for
    /// identical work. This is the determinism contract checked across
    /// thread counts.
    ///
    /// The exhaustive destructure (no `..`) is deliberate: adding a
    /// field to [`CoverageReport`] fails compilation here until the
    /// author decides whether it is outcome or timing. Float fields
    /// compare with `==`, matching the derived `PartialEq` the
    /// strip-and-compare predecessor relied on.
    // eagleeye-lint: fold-of(CoverageReport)
    pub fn same_outcome(&self, other: &CoverageReport) -> bool {
        let CoverageReport {
            captured,
            total,
            captured_value,
            total_value,
            frames_processed,
            frames_with_targets,
            per_frame_target_counts,
            per_frame_cluster_counts,
            scheduler_calls,
            scheduler_time: _,
            clustering_time: _,
            captures_commanded,
            ilp_horizons,
            greedy_fallbacks,
            deadline_fallbacks,
            repairs_attempted,
            tasks_dropped_by_failures,
            tasks_reassigned,
            captures_lost_to_faults,
            frames_leader_down,
            propagate_time: _,
            detect_time: _,
            ilp_subproblems,
            ilp_nodes_explored,
            ilp_nodes_pruned,
            ilp_lp_iterations,
            ilp_lp_pivots,
            ilp_incumbent_updates,
            ilp_deadline_hits,
            ilp_iteration_limit_hits,
            ilp_warm_starts,
            ilp_warm_rejects,
            ilp_hints_accepted,
            ilp_sparse_solves,
            ilp_presolve_vars_eliminated,
            ilp_presolve_rows_removed,
            degraded,
            leader_passes_completed,
            leader_passes_total,
        } = self;
        *captured == other.captured
            && *total == other.total
            && *captured_value == other.captured_value
            && *total_value == other.total_value
            && *frames_processed == other.frames_processed
            && *frames_with_targets == other.frames_with_targets
            && *per_frame_target_counts == other.per_frame_target_counts
            && *per_frame_cluster_counts == other.per_frame_cluster_counts
            && *scheduler_calls == other.scheduler_calls
            && *captures_commanded == other.captures_commanded
            && *ilp_horizons == other.ilp_horizons
            && *greedy_fallbacks == other.greedy_fallbacks
            && *deadline_fallbacks == other.deadline_fallbacks
            && *repairs_attempted == other.repairs_attempted
            && *tasks_dropped_by_failures == other.tasks_dropped_by_failures
            && *tasks_reassigned == other.tasks_reassigned
            && *captures_lost_to_faults == other.captures_lost_to_faults
            && *frames_leader_down == other.frames_leader_down
            && *ilp_subproblems == other.ilp_subproblems
            && *ilp_nodes_explored == other.ilp_nodes_explored
            && *ilp_nodes_pruned == other.ilp_nodes_pruned
            && *ilp_lp_iterations == other.ilp_lp_iterations
            && *ilp_lp_pivots == other.ilp_lp_pivots
            && *ilp_incumbent_updates == other.ilp_incumbent_updates
            && *ilp_deadline_hits == other.ilp_deadline_hits
            && *ilp_iteration_limit_hits == other.ilp_iteration_limit_hits
            && *ilp_warm_starts == other.ilp_warm_starts
            && *ilp_warm_rejects == other.ilp_warm_rejects
            && *ilp_hints_accepted == other.ilp_hints_accepted
            && *ilp_sparse_solves == other.ilp_sparse_solves
            && *ilp_presolve_vars_eliminated == other.ilp_presolve_vars_eliminated
            && *ilp_presolve_rows_removed == other.ilp_presolve_rows_removed
            && *degraded == other.degraded
            && *leader_passes_completed == other.leader_passes_completed
            && *leader_passes_total == other.leader_passes_total
    }

    /// Fraction of nonempty frames with more than `threshold` detected
    /// targets (the paper's Fig. 12b observation: up to 32 % of images
    /// hold more than 19 targets).
    pub fn frames_above(&self, threshold: usize) -> f64 {
        if self.per_frame_target_counts.is_empty() {
            return 0.0;
        }
        let n = self
            .per_frame_target_counts
            .iter()
            .filter(|&&c| c > threshold)
            .count();
        n as f64 / self.per_frame_target_counts.len() as f64
    }

    /// Fraction of leader passes merged into this report, in `[0, 1]`.
    /// Reports from scenarios without leader passes (swath membership,
    /// empty workloads) count as complete.
    pub fn completion_fraction(&self) -> f64 {
        if self.leader_passes_total == 0 {
            1.0
        } else {
            self.leader_passes_completed as f64 / self.leader_passes_total as f64
        }
    }

    /// Serializes the report for checkpoint payloads. The encoding is
    /// bit-exact — floats as raw IEEE-754 bits, timers as whole seconds
    /// plus subsecond nanoseconds — so a report restored on resume is
    /// indistinguishable from the one that was checkpointed.
    // eagleeye-lint: codec-write(CoverageReport)
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(REPORT_CODEC_VERSION);
        w.usize(self.captured);
        w.usize(self.total);
        w.f64(self.captured_value);
        w.f64(self.total_value);
        w.usize(self.frames_processed);
        w.usize(self.frames_with_targets);
        w.usize(self.per_frame_target_counts.len());
        for &n in &self.per_frame_target_counts {
            w.usize(n);
        }
        w.usize(self.per_frame_cluster_counts.len());
        for &n in &self.per_frame_cluster_counts {
            w.usize(n);
        }
        w.usize(self.scheduler_calls);
        for d in [
            self.scheduler_time,
            self.clustering_time,
            self.propagate_time,
            self.detect_time,
        ] {
            w.u64(d.as_secs());
            w.u32(d.subsec_nanos());
        }
        w.usize(self.captures_commanded);
        w.usize(self.ilp_horizons);
        w.usize(self.greedy_fallbacks);
        w.usize(self.deadline_fallbacks);
        w.usize(self.repairs_attempted);
        w.usize(self.tasks_dropped_by_failures);
        w.usize(self.tasks_reassigned);
        w.usize(self.captures_lost_to_faults);
        w.usize(self.frames_leader_down);
        w.usize(self.ilp_subproblems);
        w.usize(self.ilp_nodes_explored);
        w.usize(self.ilp_nodes_pruned);
        w.usize(self.ilp_lp_iterations);
        w.usize(self.ilp_lp_pivots);
        w.usize(self.ilp_incumbent_updates);
        w.usize(self.ilp_deadline_hits);
        w.usize(self.ilp_iteration_limit_hits);
        w.usize(self.ilp_warm_starts);
        w.usize(self.ilp_warm_rejects);
        w.usize(self.ilp_hints_accepted);
        w.usize(self.ilp_sparse_solves);
        w.usize(self.ilp_presolve_vars_eliminated);
        w.usize(self.ilp_presolve_rows_removed);
        w.bool(self.degraded);
        w.usize(self.leader_passes_completed);
        w.usize(self.leader_passes_total);
        w.into_bytes()
    }

    /// Restores a report written by [`to_bytes`](Self::to_bytes),
    /// rejecting unknown versions, truncation, and trailing garbage.
    // eagleeye-lint: codec-read(CoverageReport)
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        if r.u8()? != REPORT_CODEC_VERSION {
            return Err(CodecError {
                context: "report codec version",
            });
        }
        let mut out = CoverageReport {
            captured: r.usize()?,
            total: r.usize()?,
            captured_value: r.f64()?,
            total_value: r.f64()?,
            frames_processed: r.usize()?,
            frames_with_targets: r.usize()?,
            ..CoverageReport::default()
        };
        let n = r.usize()?;
        out.per_frame_target_counts = (0..n).map(|_| r.usize()).collect::<Result<_, _>>()?;
        let n = r.usize()?;
        out.per_frame_cluster_counts = (0..n).map(|_| r.usize()).collect::<Result<_, _>>()?;
        out.scheduler_calls = r.usize()?;
        let mut timers = [Duration::ZERO; 4];
        for t in &mut timers {
            let secs = r.u64()?;
            let nanos = r.u32()?;
            if nanos >= 1_000_000_000 {
                return Err(CodecError {
                    context: "timer subsec nanos",
                });
            }
            *t = Duration::new(secs, nanos);
        }
        [
            out.scheduler_time,
            out.clustering_time,
            out.propagate_time,
            out.detect_time,
        ] = timers;
        out.captures_commanded = r.usize()?;
        out.ilp_horizons = r.usize()?;
        out.greedy_fallbacks = r.usize()?;
        out.deadline_fallbacks = r.usize()?;
        out.repairs_attempted = r.usize()?;
        out.tasks_dropped_by_failures = r.usize()?;
        out.tasks_reassigned = r.usize()?;
        out.captures_lost_to_faults = r.usize()?;
        out.frames_leader_down = r.usize()?;
        out.ilp_subproblems = r.usize()?;
        out.ilp_nodes_explored = r.usize()?;
        out.ilp_nodes_pruned = r.usize()?;
        out.ilp_lp_iterations = r.usize()?;
        out.ilp_lp_pivots = r.usize()?;
        out.ilp_incumbent_updates = r.usize()?;
        out.ilp_deadline_hits = r.usize()?;
        out.ilp_iteration_limit_hits = r.usize()?;
        out.ilp_warm_starts = r.usize()?;
        out.ilp_warm_rejects = r.usize()?;
        out.ilp_hints_accepted = r.usize()?;
        out.ilp_sparse_solves = r.usize()?;
        out.ilp_presolve_vars_eliminated = r.usize()?;
        out.ilp_presolve_rows_removed = r.usize()?;
        out.degraded = r.bool()?;
        out.leader_passes_completed = r.usize()?;
        out.leader_passes_total = r.usize()?;
        if !r.is_exhausted() {
            return Err(CodecError {
                context: "report trailing bytes",
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_handles_empty_workload() {
        assert_eq!(CoverageReport::default().coverage_fraction(), 0.0);
    }

    #[test]
    fn fraction_and_frames_above() {
        let r = CoverageReport {
            captured: 30,
            total: 100,
            per_frame_target_counts: vec![5, 25, 40, 2],
            ..CoverageReport::default()
        };
        assert!((r.coverage_fraction() - 0.3).abs() < 1e-12);
        assert!((r.frames_above(19) - 0.5).abs() < 1e-12);
        assert_eq!(r.frames_above(1000), 0.0);
    }

    #[test]
    fn mean_latency_guards_division() {
        assert_eq!(
            CoverageReport::default().mean_scheduler_latency(),
            Duration::ZERO
        );
    }

    #[test]
    fn absorb_sums_counters_and_preserves_capture_totals() {
        let mut acc = CoverageReport {
            captured: 7,
            total: 10,
            frames_processed: 3,
            per_frame_target_counts: vec![1],
            scheduler_calls: 2,
            scheduler_time: Duration::from_millis(5),
            ..CoverageReport::default()
        };
        acc.absorb(CoverageReport {
            captured: 99, // must be ignored
            frames_processed: 4,
            per_frame_target_counts: vec![2, 3],
            scheduler_calls: 1,
            scheduler_time: Duration::from_millis(7),
            greedy_fallbacks: 2,
            ..CoverageReport::default()
        });
        assert_eq!(acc.captured, 7);
        assert_eq!(acc.total, 10);
        assert_eq!(acc.frames_processed, 7);
        assert_eq!(acc.per_frame_target_counts, vec![1, 2, 3]);
        assert_eq!(acc.scheduler_calls, 3);
        assert_eq!(acc.scheduler_time, Duration::from_millis(12));
        assert_eq!(acc.greedy_fallbacks, 2);
    }

    #[test]
    fn same_outcome_ignores_only_timing() {
        let a = CoverageReport {
            captured: 4,
            scheduler_time: Duration::from_millis(3),
            clustering_time: Duration::from_millis(1),
            ..CoverageReport::default()
        };
        let mut b = a.clone();
        b.scheduler_time = Duration::from_secs(9);
        b.clustering_time = Duration::ZERO;
        assert!(a.same_outcome(&b));
        b.captured = 5;
        assert!(!a.same_outcome(&b));
    }

    #[test]
    fn ilp_stats_fold_into_report_and_absorb() {
        let stats = IlpRunStats {
            subproblems: 2,
            deadline_hits: 1,
            iteration_limit_hits: 0,
            nodes_explored: 10,
            nodes_pruned: 4,
            lp_iterations: 90,
            lp_pivots: 60,
            incumbent_updates: 3,
            warm_starts: 5,
            warm_rejects: 2,
            hints_accepted: 1,
            sparse_solves: 2,
            presolve_vars_eliminated: 6,
            presolve_rows_removed: 3,
            greedy_dominated: false,
        };
        let mut part = CoverageReport::default();
        part.add_ilp_stats(&stats);
        part.add_ilp_stats(&stats);
        let mut acc = CoverageReport::default();
        acc.absorb(part);
        assert_eq!(acc.ilp_subproblems, 4);
        assert_eq!(acc.ilp_nodes_explored, 20);
        assert_eq!(acc.ilp_nodes_pruned, 8);
        assert_eq!(acc.ilp_lp_iterations, 180);
        assert_eq!(acc.ilp_lp_pivots, 120);
        assert_eq!(acc.ilp_incumbent_updates, 6);
        assert_eq!(acc.ilp_deadline_hits, 2);
        assert_eq!(acc.ilp_iteration_limit_hits, 0);
        assert_eq!(acc.ilp_warm_starts, 10);
        assert_eq!(acc.ilp_warm_rejects, 4);
        assert_eq!(acc.ilp_hints_accepted, 2);
        assert_eq!(acc.ilp_sparse_solves, 4);
        assert_eq!(acc.ilp_presolve_vars_eliminated, 12);
        assert_eq!(acc.ilp_presolve_rows_removed, 6);
    }

    #[test]
    fn record_metrics_mirrors_counters_and_histograms() {
        let report = CoverageReport {
            frames_processed: 9,
            frames_with_targets: 3,
            per_frame_target_counts: vec![1, 6, 30],
            per_frame_cluster_counts: vec![1, 4, 12],
            scheduler_calls: 3,
            scheduler_time: Duration::from_millis(4),
            captures_commanded: 5,
            ilp_subproblems: 3,
            ilp_nodes_explored: 11,
            ..CoverageReport::default()
        };
        let metrics = Metrics::enabled();
        report.record_metrics(&metrics);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("core/evaluations"), 1);
        assert_eq!(snap.counter("core/frames_processed"), 9);
        assert_eq!(snap.counter("core/scheduler_calls"), 3);
        assert_eq!(snap.counter("ilp/subproblems"), 3);
        assert_eq!(snap.counter("ilp/nodes_explored"), 11);
        let h = snap.histogram("core/frame_targets").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 37);
        let t = snap.timer("core/evaluate/schedule").unwrap();
        assert_eq!(t.total, Duration::from_millis(4));
        // Disabled metrics: a silent no-op.
        report.record_metrics(&Metrics::disabled());
    }

    #[test]
    fn same_outcome_ignores_all_four_timers() {
        let a = CoverageReport::default();
        let mut b = a.clone();
        b.propagate_time = Duration::from_secs(1);
        b.detect_time = Duration::from_secs(2);
        assert!(a.same_outcome(&b));
        b.ilp_nodes_explored = 1;
        assert!(!a.same_outcome(&b));
    }

    fn dense_report() -> CoverageReport {
        CoverageReport {
            captured: 31,
            total: 100,
            captured_value: 0.1 + 0.2, // deliberately non-round bits
            total_value: 400.5,
            frames_processed: 9,
            frames_with_targets: 3,
            per_frame_target_counts: vec![1, 6, 30],
            per_frame_cluster_counts: vec![1, 4],
            scheduler_calls: 3,
            scheduler_time: Duration::new(4, 999_999_999),
            clustering_time: Duration::from_nanos(1),
            propagate_time: Duration::from_secs(7),
            detect_time: Duration::ZERO,
            captures_commanded: 5,
            ilp_horizons: 2,
            greedy_fallbacks: 1,
            deadline_fallbacks: 1,
            repairs_attempted: 4,
            tasks_dropped_by_failures: 2,
            tasks_reassigned: 1,
            captures_lost_to_faults: 1,
            frames_leader_down: 2,
            ilp_subproblems: 3,
            ilp_nodes_explored: 11,
            ilp_nodes_pruned: 5,
            ilp_lp_iterations: 90,
            ilp_lp_pivots: 60,
            ilp_incumbent_updates: 3,
            ilp_deadline_hits: 1,
            ilp_iteration_limit_hits: 0,
            ilp_warm_starts: 8,
            ilp_warm_rejects: 2,
            ilp_hints_accepted: 1,
            ilp_sparse_solves: 2,
            ilp_presolve_vars_eliminated: 17,
            ilp_presolve_rows_removed: 4,
            degraded: true,
            leader_passes_completed: 2,
            leader_passes_total: 5,
        }
    }

    #[test]
    fn byte_codec_round_trips_exactly() {
        let r = dense_report();
        let restored = CoverageReport::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(restored, r);
        assert_eq!(
            restored.captured_value.to_bits(),
            r.captured_value.to_bits()
        );
        let empty = CoverageReport::default();
        assert_eq!(
            CoverageReport::from_bytes(&empty.to_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn byte_codec_rejects_malformed_payloads() {
        let bytes = dense_report().to_bytes();
        // Truncation at every prefix length must error, never panic.
        for n in 0..bytes.len() {
            assert!(CoverageReport::from_bytes(&bytes[..n]).is_err(), "n={n}");
        }
        // Unknown version byte.
        let mut bad = bytes.clone();
        bad[0] = 99;
        assert!(CoverageReport::from_bytes(&bad).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(CoverageReport::from_bytes(&long).is_err());
    }

    #[test]
    fn completion_fraction_and_absorb_leave_harden_fields() {
        let full = CoverageReport::default();
        assert_eq!(full.completion_fraction(), 1.0);
        let mut acc = CoverageReport {
            leader_passes_completed: 3,
            leader_passes_total: 4,
            degraded: true,
            ..CoverageReport::default()
        };
        assert!((acc.completion_fraction() - 0.75).abs() < 1e-12);
        acc.absorb(CoverageReport {
            leader_passes_completed: 9,
            leader_passes_total: 9,
            degraded: false,
            ..CoverageReport::default()
        });
        // absorb folds per-pass partials; run-level harden state stays.
        assert_eq!(acc.leader_passes_completed, 3);
        assert_eq!(acc.leader_passes_total, 4);
        assert!(acc.degraded);
    }

    #[test]
    fn value_fraction_weighs_priorities() {
        let r = CoverageReport {
            captured: 1,
            total: 2,
            captured_value: 3.0,
            total_value: 4.0,
            ..CoverageReport::default()
        };
        assert!((r.coverage_fraction() - 0.5).abs() < 1e-12);
        assert!((r.value_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(CoverageReport::default().value_fraction(), 0.0);
    }

    /// Compile-time exhaustiveness guard: every [`CoverageReport`]
    /// field is named, with no `..` rest pattern. Adding a field fails
    /// this destructure until the author revisits the codec pair,
    /// `absorb`, `record_metrics`, `same_outcome`, and their
    /// `eagleeye-lint` coverage annotations in the same change.
    #[test]
    fn coverage_report_destructure_is_exhaustive() {
        let CoverageReport {
            captured: _,
            total: _,
            captured_value: _,
            total_value: _,
            frames_processed: _,
            frames_with_targets: _,
            per_frame_target_counts: _,
            per_frame_cluster_counts: _,
            scheduler_calls: _,
            scheduler_time: _,
            clustering_time: _,
            captures_commanded: _,
            ilp_horizons: _,
            greedy_fallbacks: _,
            deadline_fallbacks: _,
            repairs_attempted: _,
            tasks_dropped_by_failures: _,
            tasks_reassigned: _,
            captures_lost_to_faults: _,
            frames_leader_down: _,
            propagate_time: _,
            detect_time: _,
            ilp_subproblems: _,
            ilp_nodes_explored: _,
            ilp_nodes_pruned: _,
            ilp_lp_iterations: _,
            ilp_lp_pivots: _,
            ilp_incumbent_updates: _,
            ilp_deadline_hits: _,
            ilp_iteration_limit_hits: _,
            ilp_warm_starts: _,
            ilp_warm_rejects: _,
            ilp_hints_accepted: _,
            ilp_sparse_solves: _,
            ilp_presolve_vars_eliminated: _,
            ilp_presolve_rows_removed: _,
            degraded: _,
            leader_passes_completed: _,
            leader_passes_total: _,
        } = CoverageReport::default();
    }

    /// Same guard for [`IlpRunStats`]: a new solver diagnostic must be
    /// threaded through [`CoverageReport::add_ilp_stats`] (or its
    /// `fold-allow` list) before this compiles again.
    #[test]
    fn ilp_run_stats_destructure_is_exhaustive() {
        let IlpRunStats {
            subproblems: _,
            deadline_hits: _,
            iteration_limit_hits: _,
            nodes_explored: _,
            nodes_pruned: _,
            lp_iterations: _,
            lp_pivots: _,
            incumbent_updates: _,
            warm_starts: _,
            warm_rejects: _,
            hints_accepted: _,
            sparse_solves: _,
            presolve_vars_eliminated: _,
            presolve_rows_removed: _,
            greedy_dominated: _,
        } = IlpRunStats::default();
    }
}
