//! End-to-end coverage evaluation (paper §5–6).
//!
//! Simulates a constellation over a target workload for a configurable
//! duration and reports the fraction of targets captured in
//! high-resolution imagery. Four constellation organizations are
//! modeled, mirroring the paper's Fig. 5:
//!
//! * **Low-Res Only** — homogeneous wide-swath constellation; counts a
//!   target as covered when it falls in the 100 km swath, but delivers
//!   only low-resolution data (the paper plots it as the physical upper
//!   bound).
//! * **High-Res Only** — homogeneous narrow-swath constellation imaging
//!   at nadir.
//! * **EagleEye** — leader-follower groups: leaders detect (with a
//!   recall model), cluster, and schedule; followers capture. Both the
//!   ILP and greedy schedulers and all clustering modes are selectable.
//! * **Mix-Camera** — both cameras on one satellite; onboard compute
//!   time eats into each frame's capture window (paper Fig. 9/13).
//!
//! Failure injection (paper §4.7) is supported: a failed leader degrades
//! its group to nadir high-resolution capture; failed followers are
//! excluded from scheduling.
//!
//! Beyond the paper, richer fault timelines can be injected via
//! [`CoverageOptions::fault_plan`] (an `Arc`-shared
//! `eagleeye_sim::FaultPlan`: satellite outages, detector dropout,
//! radio/ADACS derating, battery brownouts). [`DegradedMode`] selects whether the leader reacts to
//! those faults (excluding dead followers, repairing mid-pass failures
//! with [`SchedulerKind::Resilient`]) or naively keeps tasking dead
//! satellites — the baseline for the fault-tolerance study.

mod compile;
mod config;
mod delta;
mod evaluator;
mod harden;
mod report;

pub use compile::CompileStats;
pub use config::{ConstellationConfig, DegradedMode, FailurePlan, SchedulerKind};
pub use delta::{DeltaStats, ScenarioDelta};
pub use evaluator::{CoverageEvaluator, CoverageOptions};
pub use harden::{HardenOptions, HardenedOutcome};
pub use report::CoverageReport;
