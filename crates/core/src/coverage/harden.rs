//! Crash-safe evaluation types (see DESIGN.md §12).
//!
//! [`CoverageEvaluator::evaluate_hardened`](super::CoverageEvaluator::evaluate_hardened)
//! runs the per-leader passes of an EagleEye or Mix-Camera evaluation
//! under the `eagleeye-harden` supervised runner: partial results are
//! checkpointed on a cadence and restored with `--resume`, a wall-clock
//! deadline degrades the run into a valid partial ("anytime") report
//! instead of aborting, and panicking passes are retried and then
//! quarantined. This module holds the option/outcome types and the
//! per-leader checkpoint payload codec; the evaluation logic lives next
//! to the plain path in `evaluator.rs`.

use super::CoverageReport;
use eagleeye_harden::{
    ByteReader, ByteWriter, CheckpointSpec, CodecError, Deadline, DegradeReason, Quarantine,
    RetryPolicy, ShutdownFlag,
};
use eagleeye_obs::MetricsRegistry;

/// Crash-safety knobs for one hardened evaluation.
///
/// The default is inert: no checkpointing, no deadline, no shutdown
/// flag, and the default retry policy — a hardened run with default
/// options produces a report bit-identical (modulo wall-clock timers)
/// to [`evaluate`](super::CoverageEvaluator::evaluate).
#[derive(Debug, Clone, Default)]
pub struct HardenOptions {
    /// Checkpoint file and cadence; `None` disables checkpointing.
    pub checkpoint: Option<CheckpointSpec>,
    /// Wall-clock budget for the whole evaluation.
    pub deadline: Deadline,
    /// Cooperative shutdown request (clone it into a signal handler).
    pub shutdown: ShutdownFlag,
    /// Retry discipline for panicking leader passes.
    pub retry: RetryPolicy,
}

impl HardenOptions {
    /// Inert options (no checkpoint, no deadline).
    pub fn new() -> Self {
        HardenOptions::default()
    }

    /// Enables checkpointing to `spec.path` every `spec.cadence`
    /// completed leader passes (and once at the end).
    pub fn with_checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Result of a hardened evaluation: the (possibly partial) report plus
/// the run-layer diagnostics that do not belong in the report itself.
#[derive(Debug, Clone)]
pub struct HardenedOutcome {
    /// The merged coverage report. When
    /// [`degraded`](CoverageReport::degraded) is set, the report covers
    /// only [`leader_passes_completed`](CoverageReport::leader_passes_completed)
    /// of [`leader_passes_total`](CoverageReport::leader_passes_total)
    /// passes but every field is internally consistent.
    pub report: CoverageReport,
    /// Leader passes that kept panicking after all retries.
    pub quarantined: Vec<Quarantine>,
    /// Leader passes restored from the resumed checkpoint.
    pub resumed_passes: usize,
    /// Why the run stopped early, when it did.
    pub degrade_reason: Option<DegradeReason>,
}

/// Version byte leading every leader-pass checkpoint payload.
const PAYLOAD_VERSION: u8 = 1;
/// Payload tag: the pass completed.
const TAG_OK: u8 = 0;
/// Payload tag: the pass returned an error (replayed on resume).
const TAG_ERR: u8 = 1;

/// Encodes one leader pass's outcome as a checkpoint payload: either
/// the partial report + captured bitmap + forked metrics registry, or
/// the error message the pass failed with (stored so a resumed run
/// deterministically replays the failure instead of silently retrying).
pub(super) fn encode_leader_payload(
    result: Result<(CoverageReport, Vec<bool>, MetricsRegistry), String>,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(PAYLOAD_VERSION);
    match result {
        Ok((report, captured, registry)) => {
            w.u8(TAG_OK);
            w.bytes(&report.to_bytes());
            w.bitmap(&captured);
            w.bytes(&registry.to_bytes());
        }
        Err(message) => {
            w.u8(TAG_ERR);
            w.str(&message);
        }
    }
    w.into_bytes()
}

/// Decodes a payload written by [`encode_leader_payload`]. The outer
/// `Result` is a malformed payload; the inner one is the replayed
/// outcome of the pass itself.
#[allow(clippy::type_complexity)]
pub(super) fn decode_leader_payload(
    bytes: &[u8],
) -> Result<Result<(CoverageReport, Vec<bool>, MetricsRegistry), String>, CodecError> {
    let mut r = ByteReader::new(bytes);
    if r.u8()? != PAYLOAD_VERSION {
        return Err(CodecError {
            context: "leader payload version",
        });
    }
    match r.u8()? {
        TAG_OK => {
            let report = CoverageReport::from_bytes(r.bytes()?)?;
            let captured = r.bitmap()?;
            let registry = MetricsRegistry::from_bytes(r.bytes()?)?;
            if !r.is_exhausted() {
                return Err(CodecError {
                    context: "leader payload trailing bytes",
                });
            }
            Ok(Ok((report, captured, registry)))
        }
        TAG_ERR => {
            let message = r.str()?.to_string();
            if !r.is_exhausted() {
                return Err(CodecError {
                    context: "leader payload trailing bytes",
                });
            }
            Ok(Err(message))
        }
        _ => Err(CodecError {
            context: "leader payload tag",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagleeye_obs::Metrics;
    use std::time::Duration;

    #[test]
    fn ok_payload_round_trips_exactly() {
        let report = CoverageReport {
            frames_processed: 4,
            captured_value: 0.1 + 0.2,
            scheduler_time: Duration::from_nanos(123_456_789),
            per_frame_target_counts: vec![3, 9],
            ..CoverageReport::default()
        };
        let captured = vec![true, false, true, true, false];
        let metrics = Metrics::enabled();
        metrics.add("core/frames_processed", 4);
        metrics.observe("core/frame_targets", 3, &[1, 2, 5]);
        let registry = metrics.snapshot();

        let bytes = encode_leader_payload(Ok((report.clone(), captured.clone(), registry.clone())));
        let (r2, c2, g2) = decode_leader_payload(&bytes).unwrap().unwrap();
        assert_eq!(r2, report);
        assert_eq!(c2, captured);
        assert_eq!(g2, registry);
    }

    #[test]
    fn err_payload_replays_the_message() {
        let bytes = encode_leader_payload(Err("orbit model failed: bad altitude".into()));
        assert_eq!(
            decode_leader_payload(&bytes).unwrap(),
            Err("orbit model failed: bad altitude".to_string())
        );
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        let good = encode_leader_payload(Err("x".into()));
        for n in 0..good.len() {
            assert!(decode_leader_payload(&good[..n]).is_err(), "n={n}");
        }
        let mut bad_version = good.clone();
        bad_version[0] = 9;
        assert!(decode_leader_payload(&bad_version).is_err());
        let mut bad_tag = good.clone();
        bad_tag[1] = 7;
        assert!(decode_leader_payload(&bad_tag).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_leader_payload(&trailing).is_err());
    }
}
