//! Incremental what-if re-evaluation (DESIGN.md §14).
//!
//! A [`ScenarioDelta`] is a small, validated edit to an evaluated
//! scenario — add or drop a trailing group or follower, nudge a
//! detection parameter, or inject one more fault window. Applying it
//! yields the *child* scenario `(ConstellationConfig, CoverageOptions)`
//! pair; evaluating the child on a [`fork_with`] sibling of the parent
//! evaluator reuses every compiled track (and its memoized horizon
//! solves) the edit left untouched, so only dirty frames are re-solved.
//!
//! Reuse is behaviour-invisible by construction: the child's report is
//! bit-identical to a cold evaluation of the same child scenario, which
//! the delta differential suite (`crates/core/tests/delta_differential.rs`)
//! asserts across seeded random `(scenario, delta)` pairs.
//!
//! [`fork_with`]: super::CoverageEvaluator::fork_with

use super::config::ConstellationConfig;
use super::evaluator::{CoverageEvaluator, CoverageOptions};
use super::report::CoverageReport;
use crate::error::CoreError;
use eagleeye_sim::{FaultKind, FaultPlan};
use std::sync::Arc;

/// One validated edit to a scenario. Group-structure edits apply to
/// [`ConstellationConfig::EagleEye`] only (the other organizations have
/// no group/follower structure to edit); parameter and fault edits
/// apply to any configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioDelta {
    /// Append one trailing leader-follower group. The surviving groups'
    /// orbits stay bit-identical only under slot-pinned phasing with
    /// spare capacity ([`CoverageOptions::layout_slots`]); otherwise
    /// the child re-phases and recompiles every track.
    AddGroup,
    /// Drop the trailing leader-follower group. [`ScenarioDelta::apply`]
    /// pins the child's [`CoverageOptions::layout_slots`] to the
    /// parent's group count so every surviving group keeps its orbital
    /// slot — the geometric precondition for track reuse.
    RemoveGroup,
    /// Add one follower to every group.
    AddFollower,
    /// Remove one follower from every group.
    RemoveFollower,
    /// Set the leader detection recall to a new value in `[0, 1]`.
    NudgeRecall(f64),
    /// Set (or clear) the recapture deprioritization penalty.
    NudgeRecapture(Option<f64>),
    /// Append one fault window `[start_s, end_s)` to the scenario's
    /// fault plan (starting an empty seeded plan when it has none).
    FaultWindow {
        /// The fault class and its parameters.
        kind: FaultKind,
        /// Window start, seconds of simulation time.
        start_s: f64,
        /// Window end, seconds (exclusive); `INFINITY` = permanent.
        end_s: f64,
    },
}

impl ScenarioDelta {
    /// The child scenario this delta produces from a parent. Pure:
    /// neither input is mutated, and the same `(config, options)` pair
    /// always yields the same child.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when the delta does not apply —
    /// a group/follower edit on a non-EagleEye configuration, removing
    /// the last group or follower, an out-of-range parameter nudge, or
    /// a degenerate fault window.
    pub fn apply(
        &self,
        config: &ConstellationConfig,
        options: &CoverageOptions,
    ) -> Result<(ConstellationConfig, CoverageOptions), CoreError> {
        let mut child_cfg = *config;
        let mut child_opts = options.clone();
        match *self {
            ScenarioDelta::AddGroup => {
                let (groups, _) = eagleeye_groups(config, "add_group")?;
                set_groups(&mut child_cfg, groups + 1);
                // Spare pinned capacity keeps surviving orbits fixed;
                // an exhausted pin cannot hold the new group, so the
                // child falls back to organic phasing (full recompile).
                child_opts.layout_slots = options.layout_slots.filter(|&s| s > groups);
            }
            ScenarioDelta::RemoveGroup => {
                let (groups, _) = eagleeye_groups(config, "remove_group")?;
                if groups == 0 {
                    return Err(CoreError::InvalidParameter {
                        name: "remove_group",
                        value: 0.0,
                    });
                }
                set_groups(&mut child_cfg, groups - 1);
                child_opts.layout_slots = Some(options.layout_slots.unwrap_or(groups));
            }
            ScenarioDelta::AddFollower => {
                let (_, followers) = eagleeye_groups(config, "add_follower")?;
                set_followers(&mut child_cfg, followers + 1);
            }
            ScenarioDelta::RemoveFollower => {
                let (_, followers) = eagleeye_groups(config, "remove_follower")?;
                if followers == 0 {
                    return Err(CoreError::InvalidParameter {
                        name: "remove_follower",
                        value: 0.0,
                    });
                }
                set_followers(&mut child_cfg, followers - 1);
            }
            ScenarioDelta::NudgeRecall(recall) => {
                if !(0.0..=1.0).contains(&recall) {
                    return Err(CoreError::InvalidParameter {
                        name: "recall",
                        value: recall,
                    });
                }
                child_opts.recall = recall;
            }
            ScenarioDelta::NudgeRecapture(penalty) => {
                if let Some(p) = penalty {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(CoreError::InvalidParameter {
                            name: "recapture_penalty",
                            value: p,
                        });
                    }
                }
                child_opts.recapture_penalty = penalty;
            }
            ScenarioDelta::FaultWindow {
                kind,
                start_s,
                end_s,
            } => {
                if !(start_s >= 0.0 && end_s > start_s) {
                    return Err(CoreError::InvalidParameter {
                        name: "fault_window_end_s",
                        value: end_s,
                    });
                }
                let base = match options.fault_plan.as_deref() {
                    Some(plan) => plan.clone(),
                    None => FaultPlan::new(options.seed),
                };
                child_opts.fault_plan = Some(Arc::new(base.with_fault(kind, start_s, end_s)));
            }
        }
        Ok((child_cfg, child_opts))
    }
}

/// The group/follower structure of an EagleEye configuration, or
/// [`CoreError::InvalidParameter`] (named after the offending delta)
/// for organizations without one.
fn eagleeye_groups(
    config: &ConstellationConfig,
    delta_name: &'static str,
) -> Result<(usize, usize), CoreError> {
    match *config {
        ConstellationConfig::EagleEye {
            groups,
            followers_per_group,
            ..
        } => Ok((groups, followers_per_group)),
        _ => Err(CoreError::InvalidParameter {
            name: delta_name,
            value: f64::NAN,
        }),
    }
}

fn set_groups(config: &mut ConstellationConfig, n: usize) {
    if let ConstellationConfig::EagleEye { groups, .. } = config {
        *groups = n;
    }
}

fn set_followers(config: &mut ConstellationConfig, n: usize) {
    if let ConstellationConfig::EagleEye {
        followers_per_group,
        ..
    } = config
    {
        *followers_per_group = n;
    }
}

/// Reuse achieved by one [`CoverageEvaluator::what_if`] call: the
/// difference of the shared compile cache's counters across the child
/// evaluation. `track_shares`/`memo_hits` is the work the delta saved;
/// `track_builds`/`memo_misses` is the dirty set it had to redo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Tracks compiled from scratch for the child (dirty satellites).
    pub track_builds: u64,
    /// Tracks the child adopted unchanged from the cross-scenario pool.
    pub track_shares: u64,
    /// Tracks reused from the child's own scenario cache (repeat
    /// evaluations of the same child).
    pub track_reuses: u64,
    /// Horizon solves replayed from an adopted track's memo.
    pub memo_hits: u64,
    /// Horizon solves performed live for the child.
    pub memo_misses: u64,
}

impl<'a> CoverageEvaluator<'a> {
    /// Applies `delta` to `config` (against this evaluator's options)
    /// and evaluates the child scenario on a [`fork_with`] sibling, so
    /// compiled tracks and memoized horizon solves the delta left
    /// untouched are reused instead of recomputed. Returns the child's
    /// report — bit-identical to a cold evaluation of the same child —
    /// plus the reuse counters of this call.
    ///
    /// # Errors
    ///
    /// Delta validation errors from [`ScenarioDelta::apply`], plus
    /// anything [`evaluate`](Self::evaluate) can raise.
    ///
    /// [`fork_with`]: Self::fork_with
    pub fn what_if(
        &self,
        config: &ConstellationConfig,
        delta: &ScenarioDelta,
    ) -> Result<(CoverageReport, DeltaStats), CoreError> {
        let (child_cfg, child_opts) = delta.apply(config, self.options())?;
        let child = self.fork_with(child_opts);
        let before = child.compile_stats();
        let report = child.evaluate(&child_cfg)?;
        let after = child.compile_stats();
        Ok((
            report,
            DeltaStats {
                track_builds: after.track_builds - before.track_builds,
                track_shares: after.track_shares - before.track_shares,
                track_reuses: after.track_reuses - before.track_reuses,
                memo_hits: after.memo_hits - before.memo_hits,
                memo_misses: after.memo_misses - before.memo_misses,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::SchedulerKind;
    use eagleeye_datasets::ShipGenerator;

    fn base_options() -> CoverageOptions {
        CoverageOptions {
            duration_s: 1_200.0,
            layout_slots: Some(4),
            ..CoverageOptions::default()
        }
    }

    #[test]
    fn remove_group_pins_layout_and_shrinks_config() {
        let cfg = ConstellationConfig::eagleeye(4, 2);
        let opts = CoverageOptions::default();
        let (child_cfg, child_opts) = ScenarioDelta::RemoveGroup.apply(&cfg, &opts).unwrap();
        match child_cfg {
            ConstellationConfig::EagleEye {
                groups,
                followers_per_group,
                ..
            } => {
                assert_eq!(groups, 3);
                assert_eq!(followers_per_group, 2);
            }
            other => panic!("unexpected child config {other:?}"),
        }
        // The parent phased organically over 4 slots; the child pins
        // those 4 slots so the surviving groups keep their orbits.
        assert_eq!(child_opts.layout_slots, Some(4));
    }

    #[test]
    fn add_group_keeps_pin_only_with_spare_capacity() {
        let cfg = ConstellationConfig::eagleeye(3, 1);
        let spare = CoverageOptions {
            layout_slots: Some(8),
            ..CoverageOptions::default()
        };
        let (_, child) = ScenarioDelta::AddGroup.apply(&cfg, &spare).unwrap();
        assert_eq!(child.layout_slots, Some(8));

        let exhausted = CoverageOptions {
            layout_slots: Some(3),
            ..CoverageOptions::default()
        };
        let (_, child) = ScenarioDelta::AddGroup.apply(&cfg, &exhausted).unwrap();
        assert_eq!(child.layout_slots, None);
    }

    #[test]
    fn structural_deltas_reject_non_eagleeye_configs() {
        let opts = CoverageOptions::default();
        for cfg in [
            ConstellationConfig::LowResOnly { satellites: 4 },
            ConstellationConfig::MixCamera {
                satellites: 3,
                compute_time_s: 1.4,
            },
        ] {
            for delta in [
                ScenarioDelta::AddGroup,
                ScenarioDelta::RemoveGroup,
                ScenarioDelta::AddFollower,
                ScenarioDelta::RemoveFollower,
            ] {
                assert!(
                    delta.apply(&cfg, &opts).is_err(),
                    "{delta:?} must reject {cfg:?}"
                );
            }
        }
        // Parameter and fault deltas apply everywhere.
        let cfg = ConstellationConfig::LowResOnly { satellites: 4 };
        assert!(ScenarioDelta::NudgeRecall(0.5).apply(&cfg, &opts).is_ok());
        assert!(ScenarioDelta::FaultWindow {
            kind: FaultKind::LeaderOutage,
            start_s: 10.0,
            end_s: 20.0,
        }
        .apply(&cfg, &opts)
        .is_ok());
    }

    #[test]
    fn parameter_deltas_validate_ranges() {
        let cfg = ConstellationConfig::eagleeye(2, 1);
        let opts = CoverageOptions::default();
        assert!(ScenarioDelta::NudgeRecall(1.5).apply(&cfg, &opts).is_err());
        assert!(ScenarioDelta::NudgeRecall(-0.1).apply(&cfg, &opts).is_err());
        assert!(ScenarioDelta::NudgeRecapture(Some(2.0))
            .apply(&cfg, &opts)
            .is_err());
        assert!(ScenarioDelta::NudgeRecapture(None)
            .apply(&cfg, &opts)
            .is_ok());
        assert!(ScenarioDelta::FaultWindow {
            kind: FaultKind::BatteryBrownout,
            start_s: 30.0,
            end_s: 30.0,
        }
        .apply(&cfg, &opts)
        .is_err());
        assert!(ScenarioDelta::RemoveFollower
            .apply(&ConstellationConfig::eagleeye(2, 0), &opts)
            .is_err());
        assert!(ScenarioDelta::RemoveGroup
            .apply(&ConstellationConfig::eagleeye(0, 1), &opts)
            .is_err());
    }

    #[test]
    fn fault_window_appends_to_existing_plan() {
        let cfg = ConstellationConfig::eagleeye(2, 1);
        let opts = CoverageOptions {
            fault_plan: Some(Arc::new(FaultPlan::new(9).with_fault(
                FaultKind::LeaderOutage,
                100.0,
                200.0,
            ))),
            ..CoverageOptions::default()
        };
        let (_, child) = ScenarioDelta::FaultWindow {
            kind: FaultKind::FollowerOutage { follower: 0 },
            start_s: 400.0,
            end_s: f64::INFINITY,
        }
        .apply(&cfg, &opts)
        .unwrap();
        let plan = child.fault_plan.unwrap();
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.faults().len(), 2);
        // The parent's plan is untouched (pure application).
        assert_eq!(opts.fault_plan.as_deref().unwrap().faults().len(), 1);
    }

    #[test]
    fn what_if_remove_group_reuses_surviving_tracks_bit_identically() {
        let ships = ShipGenerator::new().with_count(4_000).generate(11);
        let parent_cfg = ConstellationConfig::EagleEye {
            groups: 4,
            followers_per_group: 1,
            scheduler: SchedulerKind::Ilp,
            clustering: crate::clustering::ClusteringMethod::Ilp,
        };
        let parent = CoverageEvaluator::new(&ships, base_options());
        parent.evaluate(&parent_cfg).unwrap();

        let (delta_report, stats) = parent
            .what_if(&parent_cfg, &ScenarioDelta::RemoveGroup)
            .unwrap();
        // 3 of 4 leader tracks survive the removal and are adopted
        // from the pool, memoized horizon solves included.
        assert_eq!(stats.track_shares, 3, "stats: {stats:?}");
        assert_eq!(stats.track_builds, 0, "stats: {stats:?}");
        assert!(stats.memo_hits > 0, "stats: {stats:?}");

        // Bit-identical to a cold evaluation of the same child.
        let (child_cfg, child_opts) = ScenarioDelta::RemoveGroup
            .apply(&parent_cfg, parent.options())
            .unwrap();
        let cold = CoverageEvaluator::new(&ships, child_opts);
        let cold_report = cold.evaluate(&child_cfg).unwrap();
        assert!(
            delta_report.same_outcome(&cold_report),
            "delta {delta_report:?} != cold {cold_report:?}"
        );
    }

    #[test]
    fn what_if_fault_window_shares_tracks_and_resolves_dirty_frames() {
        let ships = ShipGenerator::new().with_count(4_000).generate(11);
        let cfg = ConstellationConfig::EagleEye {
            groups: 2,
            followers_per_group: 1,
            scheduler: SchedulerKind::Resilient,
            clustering: crate::clustering::ClusteringMethod::Ilp,
        };
        let opts = CoverageOptions {
            fault_plan: Some(Arc::new(FaultPlan::new(3))),
            ..base_options()
        };
        let parent = CoverageEvaluator::new(&ships, opts);
        parent.evaluate(&cfg).unwrap();

        // A horizon-wide slew derate perturbs the solver inputs of
        // every scheduled frame, so the digests diverge everywhere.
        let delta = ScenarioDelta::FaultWindow {
            kind: FaultKind::SlewDerate { rate_factor: 0.5 },
            start_s: 0.0,
            end_s: f64::INFINITY,
        };
        let (delta_report, stats) = parent.what_if(&cfg, &delta).unwrap();
        // The fault plan is not part of the track identity: both
        // leader tracks are adopted, but every dirty horizon re-solves
        // live instead of replaying the parent's memo.
        assert_eq!(stats.track_shares, 2, "stats: {stats:?}");
        assert_eq!(stats.memo_hits, 0, "stats: {stats:?}");
        assert!(stats.memo_misses > 0, "stats: {stats:?}");

        let (child_cfg, child_opts) = delta.apply(&cfg, parent.options()).unwrap();
        let cold = CoverageEvaluator::new(&ships, child_opts);
        let cold_report = cold.evaluate(&child_cfg).unwrap();
        assert!(
            delta_report.same_outcome(&cold_report),
            "delta {delta_report:?} != cold {cold_report:?}"
        );
    }
}
