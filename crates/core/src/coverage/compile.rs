//! The compiled access-interval engine behind the coverage evaluator
//! (DESIGN.md §13).
//!
//! Evaluating a scenario with the legacy frame walk repeats, per
//! evaluation, three kinds of work whose inputs never change between
//! evaluations of the same `(layout, grid, workload)`: batch orbit
//! propagation, per-frame spatial membership queries, and — dominating
//! everything at ~90 % of wall time — the per-horizon scheduler solves.
//! This module compiles each satellite's pass into a [`CompiledTrack`]:
//!
//! * **states** — the batch-propagated [`TrackState`]s (this is the
//!   propagation cache the evaluator previously rebuilt every run);
//! * **access intervals** — sorted per-target access windows
//!   (entry/exit frame indices) with projected `(x, y)` coefficients
//!   stored struct-of-arrays, computed once by a segment sweep that
//!   takes one [`BucketView`] per five-minute bucket and reproduces the
//!   legacy per-frame `query_radius` + projection results bit-for-bit;
//! * **solved horizons** — a digest-keyed memo of deterministic
//!   scheduler results (schedule, solver diagnostics, fault repairs),
//!   replayed instead of re-solved when a later evaluation presents the
//!   exact same per-frame scheduling inputs.
//!
//! The evaluate phase then sweeps the sorted interval events per frame
//! ([`IntervalSweep`]), so per-frame membership work is O(targets in
//! view) with no spatial queries, no index locks, and no trigonometry.
//!
//! # Determinism
//!
//! Everything cached here is a pure function of its recorded inputs:
//! membership of `(track, grid, targets, geometry)`, solves of the
//! digested horizon inputs (frame index, epoch, task list, follower
//! states, slew/clip/task-cap modifiers). Memo state lives in
//! `BTreeMap`s (deterministic iteration, though nothing iterates them
//! into a report) and replaying a memo applies exactly the report
//! mutations the live solve applied, so warm and cold evaluations
//! produce bit-identical [`super::CoverageReport`]s — the perf harness
//! and the differential suite (`interval_engine_differential.rs`)
//! assert this on every run.

use crate::schedule::{IlpRunStats, Schedule};
use crate::CoreError;
use eagleeye_datasets::{BucketView, TargetSet};
use eagleeye_geo::LocalFrame;
use eagleeye_harden::ScenarioHasher;
use eagleeye_orbit::TrackState;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Recover a poisoned guard: every mutation behind these locks is
/// all-or-nothing (a slot is written once, fully built; a memo entry is
/// inserted complete), so a panicked peer cannot leave torn state.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Low-res frame geometry of the membership test, fixed per scenario.
#[derive(Debug, Clone, Copy)]
pub(super) struct CompileGeometry {
    /// Great-circle candidate radius (frame half-diagonal plus margin).
    pub bound_m: f64,
    /// Half the swath (cross-track box half-extent).
    pub half_cross_m: f64,
    /// Half the frame length (along-track box half-extent).
    pub half_along_m: f64,
}

/// Sorted per-target access windows, struct-of-arrays: interval `j` is
/// target `target[j]` continuously in frame over frames
/// `entry[j]..=exit[j]`. Sorted by `(entry, target)` — the order the
/// frame-major compile sweep discovers them in.
#[derive(Debug, Default)]
pub(super) struct AccessIntervals {
    /// Target index of each interval.
    pub target: Vec<u32>,
    /// First in-frame frame index (inclusive).
    pub entry: Vec<u32>,
    /// Last in-frame frame index (inclusive).
    pub exit: Vec<u32>,
}

impl AccessIntervals {
    fn len(&self) -> usize {
        self.target.len()
    }
}

/// Frame-major projected local-frame coordinates: frame `f`'s entries
/// occupy `offsets[f]..offsets[f+1]` of `x`/`y`, in ascending target
/// order — exactly the tuples the legacy walk pushed into `in_frame`.
#[derive(Debug)]
pub(super) struct FrameCoeffs {
    /// CSR offsets, `n_frames + 1` entries.
    pub offsets: Vec<u32>,
    /// Cross-track offset of each entry, meters.
    pub x: Vec<f64>,
    /// Along-track offset of each entry, meters.
    pub y: Vec<f64>,
}

impl FrameCoeffs {
    fn with_frames(frames: usize) -> Self {
        let mut offsets = Vec::with_capacity(frames + 1);
        offsets.push(0);
        FrameCoeffs {
            offsets,
            x: Vec::new(),
            y: Vec::new(),
        }
    }
}

/// A memoized per-horizon scheduler result: the final schedule (after
/// any fault repair) plus every report mutation the live solve made, so
/// replay is observationally identical to re-solving.
#[derive(Debug, Clone)]
pub(super) struct SolvedHorizon {
    /// Post-repair schedule handed to capture execution.
    pub schedule: Schedule,
    /// ILP diagnostics recorded via `CoverageReport::add_ilp_stats`.
    pub ilp_stats: Option<IlpRunStats>,
    /// Which solver-provenance counters the solve incremented.
    pub outcome: SolvedOutcome,
    /// `repairs_attempted` increment from the fault-repair pass.
    pub repairs_attempted: usize,
    /// `tasks_dropped_by_failures` increment.
    pub dropped_tasks: usize,
    /// `tasks_reassigned` increment.
    pub reassigned_tasks: usize,
}

/// Solver-provenance counter increments of one horizon solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum SolvedOutcome {
    /// Plain scheduler (no provenance counters).
    Plain,
    /// Resilient scheduler chose the ILP (`ilp_horizons += 1`).
    IlpHorizon,
    /// Resilient scheduler fell back to greedy
    /// (`greedy_fallbacks += 1`, plus `deadline_fallbacks` when the
    /// fallback reason was the frame deadline).
    GreedyFallback {
        /// Whether the fallback was deadline-triggered.
        deadline: bool,
    },
}

/// One satellite's compiled pass: propagated states, access intervals
/// with projected coefficients, and the horizon-solve memo.
#[derive(Debug)]
pub(super) struct CompiledTrack {
    /// Batch-propagated state per grid epoch.
    pub states: Vec<TrackState>,
    /// Sorted access-window events.
    pub intervals: AccessIntervals,
    /// Frame-major projected coordinates.
    pub coeffs: FrameCoeffs,
    /// Largest per-frame membership count (scratch preallocation size).
    pub peak_frame_entries: usize,
    /// Digest-keyed memo of deterministic horizon solves.
    pub solved: Mutex<BTreeMap<u64, SolvedHorizon>>,
}

impl CompiledTrack {
    /// Assembles a track from per-frame-range membership parts, in
    /// range order. Interval entry/exit indices are absolute, so
    /// concatenation only rebases the CSR offsets. A target in frame
    /// across a range boundary yields two adjacent intervals instead of
    /// one merged window; the sweep reproduces identical per-frame
    /// membership either way, so the split is unobservable.
    pub fn assemble(
        states: Vec<TrackState>,
        parts: Vec<(AccessIntervals, FrameCoeffs)>,
    ) -> CompiledTrack {
        let n_frames: usize = parts.iter().map(|(_, c)| c.offsets.len() - 1).sum();
        let n_intervals: usize = parts.iter().map(|(iv, _)| iv.len()).sum();
        let n_entries: usize = parts.iter().map(|(_, c)| c.x.len()).sum();
        debug_assert_eq!(n_frames, states.len());
        let mut intervals = AccessIntervals {
            target: Vec::with_capacity(n_intervals),
            entry: Vec::with_capacity(n_intervals),
            exit: Vec::with_capacity(n_intervals),
        };
        let mut coeffs = FrameCoeffs::with_frames(n_frames);
        coeffs.x.reserve(n_entries);
        coeffs.y.reserve(n_entries);
        for (iv, co) in parts {
            intervals.target.extend_from_slice(&iv.target);
            intervals.entry.extend_from_slice(&iv.entry);
            intervals.exit.extend_from_slice(&iv.exit);
            let base = *coeffs.offsets.last().unwrap_or(&0);
            coeffs
                .offsets
                .extend(co.offsets.iter().skip(1).map(|&o| base + o));
            coeffs.x.extend_from_slice(&co.x);
            coeffs.y.extend_from_slice(&co.y);
        }
        let peak_frame_entries = coeffs
            .offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0);
        CompiledTrack {
            states,
            intervals,
            coeffs,
            peak_frame_entries,
            solved: Mutex::new(BTreeMap::new()),
        }
    }

    /// Looks up a memoized horizon solve by digest.
    pub fn solved_get(&self, digest: u64) -> Option<SolvedHorizon> {
        lock_unpoisoned(&self.solved).get(&digest).cloned()
    }

    /// Records a horizon solve for replay.
    pub fn solved_put(&self, digest: u64, solved: SolvedHorizon) {
        lock_unpoisoned(&self.solved).insert(digest, solved);
    }
}

/// Computes one satellite's membership over a frame range: per frame,
/// the targets inside the low-res box with their projected `(x, y)`.
///
/// Bit-identical to the legacy per-frame walk by construction: the
/// candidate set comes from the same per-bucket [`BucketView`] the
/// legacy `TargetSet::query_radius` consults (fetched once per
/// five-minute segment instead of once per frame), refined by the same
/// exact predicate (`within_radius_at`) in the same ascending order,
/// then projected through the same [`LocalFrame`] and box test.
pub(super) fn membership_chunk(
    states: &[TrackState],
    epochs: &[f64],
    frames: Range<usize>,
    targets: &TargetSet,
    geom: &CompileGeometry,
) -> Result<(AccessIntervals, FrameCoeffs), CoreError> {
    let mut intervals = AccessIntervals::default();
    let mut coeffs = FrameCoeffs::with_frames(frames.len());
    // Open-run tracking: open[tgt] is the interval id whose exit frame
    // was the previous frame, or OPEN_NONE. Stale ids (exit older than
    // the previous frame) fail the extension check, so no clearing.
    const OPEN_NONE: u32 = u32::MAX;
    let mut open = vec![OPEN_NONE; targets.len()];
    let mut view: Option<BucketView> = None;
    for f in frames {
        let t = epochs[f];
        let state = &states[f];
        let subsat = state.subsatellite.with_altitude(0.0)?;
        let frame = LocalFrame::new(subsat, state.heading_rad);
        if !view.as_ref().is_some_and(|v| v.covers(t)) {
            view = None;
        }
        let v = view.get_or_insert_with(|| targets.bucket_view(t));
        let fi = f as u32;
        for idx in targets.candidates_in(v, &subsat, geom.bound_m) {
            if !targets.within_radius_at(idx, &subsat, geom.bound_m, t) {
                continue;
            }
            let p = targets.target(idx).position_at(t);
            let (x, y) = frame.project(&p);
            if x.abs() <= geom.half_cross_m && y.abs() <= geom.half_along_m {
                let j = open[idx] as usize;
                if open[idx] != OPEN_NONE && intervals.exit[j] + 1 == fi {
                    intervals.exit[j] = fi;
                } else {
                    open[idx] = intervals.len() as u32;
                    intervals.target.push(idx as u32);
                    intervals.entry.push(fi);
                    intervals.exit.push(fi);
                }
                coeffs.x.push(x);
                coeffs.y.push(y);
            }
        }
        coeffs.offsets.push(coeffs.x.len() as u32);
    }
    Ok((intervals, coeffs))
}

/// Per-frame sweep over a track's sorted interval events.
///
/// `advance` must be called once per frame, in order from the first
/// frame: it opens the intervals entering at `frame` (kept ordered by
/// target index), drops the ones that exited, and emits the active
/// `(target, x, y)` tuples — exactly the legacy `in_frame` contents.
pub(super) struct IntervalSweep<'a> {
    track: &'a CompiledTrack,
    /// Next unopened interval (intervals are sorted by entry frame).
    next: usize,
    /// Open interval ids, ascending by target index — which is also
    /// the frame-major coefficient order, so entry `pos` of the active
    /// list reads coefficient `offsets[frame] + pos`.
    active: Vec<u32>,
}

impl<'a> IntervalSweep<'a> {
    /// Starts a sweep at the first frame.
    pub fn new(track: &'a CompiledTrack) -> Self {
        IntervalSweep {
            track,
            next: 0,
            active: Vec::new(),
        }
    }

    /// Emits frame `frame`'s membership into `out` (cleared first).
    pub fn advance(&mut self, frame: u32, out: &mut Vec<(usize, f64, f64)>) {
        let iv = &self.track.intervals;
        self.active.retain(|&j| iv.exit[j as usize] >= frame);
        while self.next < iv.len() && iv.entry[self.next] <= frame {
            debug_assert_eq!(iv.entry[self.next], frame, "sweep must visit every frame");
            let j = self.next as u32;
            let tgt = iv.target[self.next];
            let pos = self
                .active
                .partition_point(|&k| iv.target[k as usize] < tgt);
            self.active.insert(pos, j);
            self.next += 1;
        }
        let co = &self.track.coeffs;
        let base = co.offsets[frame as usize] as usize;
        debug_assert_eq!(
            co.offsets[frame as usize + 1] as usize - base,
            self.active.len(),
            "active intervals must match frame-major entry count"
        );
        out.clear();
        out.extend(self.active.iter().enumerate().map(|(pos, &j)| {
            (
                iv.target[j as usize] as usize,
                co.x[base + pos],
                co.y[base + pos],
            )
        }));
    }
}

/// Digest of every input a horizon solve (including fault repair)
/// depends on, beyond the track-pool key already binding the options
/// that do not flow through these per-frame inputs. Two horizons with
/// equal digests received identical solver inputs, so replaying one's
/// recorded result for the other is exact; any divergence (fault
/// modifiers, recapture-scaled values, different follower state,
/// mid-frame outage onsets driving a schedule repair) changes the
/// digest and forces a live solve.
///
/// `repair_failures` carries the `(active-slot, onset)` pairs the
/// fault-repair pass would act on this frame. They are a function of
/// the fault plan, which is *not* part of the track-pool key (so
/// fault-window what-if deltas can share tracks); digesting them here
/// is what keeps memo replay exact across fault-plan edits.
// eagleeye-lint: digest-of(TaskSpec, GroundPoint, FollowerState)
#[allow(clippy::too_many_arguments)]
pub(super) fn horizon_digest(
    frame_idx: usize,
    t: f64,
    task_cap: usize,
    slew_factor: f64,
    clip: Option<(f64, f64)>,
    tasks: &[crate::schedule::TaskSpec],
    active: &[usize],
    follower_states: &[crate::schedule::FollowerState],
    repair_failures: &[(usize, f64)],
    ilp_tier: crate::schedule::SolverTier,
) -> u64 {
    // The tier is part of the memo key (not a persisted codec): a
    // sparse-tier solve is observationally equivalent but not
    // bit-identical in its diagnostics, so replaying one under the
    // other tier would leak those differences into the report.
    let tier_byte: u64 = match ilp_tier {
        crate::schedule::SolverTier::Dense => 0,
        crate::schedule::SolverTier::Sparse => 1,
        crate::schedule::SolverTier::Auto => 2,
    };
    let mut h = ScenarioHasher::new();
    h.str("eagleeye-core/horizon/v2")
        .u64(frame_idx as u64)
        .f64(t)
        .u64(task_cap as u64)
        .f64(slew_factor)
        .u64(tier_byte);
    match clip {
        Some((start, end)) => {
            h.u64(1).f64(start).f64(end);
        }
        None => {
            h.u64(0);
        }
    }
    h.u64(tasks.len() as u64);
    for task in tasks {
        h.f64(task.point.cross_m)
            .f64(task.point.along_m)
            .f64(task.value);
    }
    h.u64(active.len() as u64);
    for (&k, fs) in active.iter().zip(follower_states) {
        h.u64(k as u64)
            .f64(fs.along_at_0_m)
            .f64(fs.available_from_s)
            .f64(fs.pointing_offset.0)
            .f64(fs.pointing_offset.1);
    }
    h.u64(repair_failures.len() as u64);
    for &(slot, onset) in repair_failures {
        h.u64(slot as u64).f64(onset);
    }
    h.finish()
}

/// One scenario's compiled tracks: slot `i` belongs to satellite `i` of
/// the scenario's roster (leaders for leader-follower configurations,
/// every satellite for swath ones), compiled lazily on first use.
#[derive(Debug)]
pub(super) struct CompiledScenario {
    /// Per-satellite compiled-track slots.
    pub tracks: Vec<Mutex<Option<Arc<CompiledTrack>>>>,
}

impl CompiledScenario {
    /// The compiled track in slot `i`, if already built.
    pub fn track(&self, i: usize) -> Option<Arc<CompiledTrack>> {
        lock_unpoisoned(&self.tracks[i]).clone()
    }

    /// Stores a freshly compiled track in slot `i`, keeping the
    /// incumbent if a concurrent evaluation got there first (both are
    /// pure functions of the same inputs). Returns the slot's track.
    pub fn store(&self, i: usize, track: Arc<CompiledTrack>) -> Arc<CompiledTrack> {
        let mut slot = lock_unpoisoned(&self.tracks[i]);
        slot.get_or_insert(track).clone()
    }
}

/// Counters of compiled-program reuse, exposed through
/// [`crate::coverage::CoverageEvaluator::compile_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileStats {
    /// Tracks compiled (propagation + membership sweep executed).
    pub track_builds: u64,
    /// Track reuses — evaluations that skipped propagation and
    /// membership entirely because the compiled track was cached.
    pub track_reuses: u64,
    /// Tracks adopted from the cross-scenario pool: a *different*
    /// scenario key (typically a what-if delta of the parent) had
    /// already compiled an identical track, so this scenario inherited
    /// it — memoized horizon solves included — instead of building.
    pub track_shares: u64,
    /// Horizon solves replayed from the memo instead of re-solved.
    pub memo_hits: u64,
    /// Horizon solves executed live (and recorded for future replay).
    pub memo_misses: u64,
}

/// The evaluator's compiled-program cache: one [`CompiledScenario`] per
/// configuration key, plus reuse counters. Lives on the evaluator, so
/// repeated evaluations of the same configuration (Monte-Carlo reps,
/// sweep refinement, the perf harness) skip recompilation.
#[derive(Debug, Default)]
pub(super) struct CompileCache {
    scenarios: Mutex<BTreeMap<String, Arc<CompiledScenario>>>,
    /// Cross-scenario track pool, keyed by a digest of everything a
    /// compiled track (and the safety of sharing its horizon memo)
    /// depends on: satellite elements, grid, membership geometry,
    /// sensing spec, workload, and scheduler identity. Scenario keys
    /// deliberately over-bind (they include recall, seed, fault plan);
    /// the pool is what lets a what-if delta's child scenario inherit
    /// the parent's tracks — memoized solves included — for every
    /// satellite the delta left untouched.
    tracks: Mutex<BTreeMap<u64, Arc<CompiledTrack>>>,
    track_builds: AtomicU64,
    track_reuses: AtomicU64,
    track_shares: AtomicU64,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
}

impl CompileCache {
    /// The compiled scenario for `key`, created empty on first use with
    /// `n_tracks` satellite slots.
    pub fn scenario(&self, key: &str, n_tracks: usize) -> Arc<CompiledScenario> {
        let mut map = lock_unpoisoned(&self.scenarios);
        map.entry(key.to_string())
            .or_insert_with(|| {
                Arc::new(CompiledScenario {
                    tracks: (0..n_tracks).map(|_| Mutex::new(None)).collect(),
                })
            })
            .clone()
    }

    /// Looks up a track in the cross-scenario pool by its digest.
    pub fn pool_get(&self, digest: u64) -> Option<Arc<CompiledTrack>> {
        lock_unpoisoned(&self.tracks).get(&digest).cloned()
    }

    /// Publishes a freshly built track to the cross-scenario pool,
    /// keeping the incumbent if a concurrent build got there first
    /// (both are pure functions of the digested inputs). Returns the
    /// pooled track.
    pub fn pool_put(&self, digest: u64, track: Arc<CompiledTrack>) -> Arc<CompiledTrack> {
        let mut map = lock_unpoisoned(&self.tracks);
        map.entry(digest).or_insert(track).clone()
    }

    /// Counts one compiled track build.
    pub fn note_build(&self) {
        self.track_builds.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one compiled track reuse.
    pub fn note_reuse(&self) {
        self.track_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one track adopted from the cross-scenario pool.
    pub fn note_share(&self) {
        self.track_shares.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one memo replay.
    pub fn note_memo_hit(&self) {
        self.memo_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one live solve under an active memo.
    pub fn note_memo_miss(&self) {
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the reuse counters.
    pub fn stats(&self) -> CompileStats {
        CompileStats {
            track_builds: self.track_builds.load(Ordering::Relaxed),
            track_reuses: self.track_reuses.load(Ordering::Relaxed),
            track_shares: self.track_shares.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
        }
    }
}
