use super::compile::{
    horizon_digest, membership_chunk, CompileCache, CompileGeometry, CompileStats,
    CompiledScenario, CompiledTrack, IntervalSweep, SolvedHorizon, SolvedOutcome,
};
use super::harden::{decode_leader_payload, encode_leader_payload};
use super::{
    ConstellationConfig, CoverageReport, DegradedMode, FailurePlan, HardenOptions, HardenedOutcome,
    SchedulerKind,
};
use crate::clustering::{cluster, ClusteringMethod};
use crate::pointing::TimeWindow;
use crate::schedule::{
    AbbScheduler, FollowerState, GreedyScheduler, IlpScheduler, ResilientScheduler, Schedule,
    Scheduler, SchedulingProblem, SolverChoice, SolverTier, TaskSpec,
};
use crate::{Adacs, CoreError, SensingSpec};
use eagleeye_datasets::TargetSet;
use eagleeye_exec::ExecPool;
use eagleeye_geo::LocalFrame;
use eagleeye_harden::{run_items, RunConfig, ScenarioHasher};
use eagleeye_obs::{Metrics, Stopwatch};
use eagleeye_orbit::{ConstellationLayout, EpochGrid, SatelliteSpec, TrackState};
use eagleeye_sim::FaultPlan;
use std::sync::Arc;

/// Options controlling a coverage evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageOptions {
    /// Sensing configuration (cameras, ADACS, orbit geometry).
    pub spec: SensingSpec,
    /// Simulated duration, seconds. The paper runs 24 h; the default is
    /// 4 h, which preserves every trend at a fraction of the cost (see
    /// EXPERIMENTS.md).
    pub duration_s: f64,
    /// Orbit inclination, radians (paper: 97.2°).
    pub inclination_rad: f64,
    /// Leader detection recall in `[0, 1]` (Fig. 15 sweeps this).
    pub recall: f64,
    /// RNG seed for the detection model.
    pub seed: u64,
    /// Cap on clusters handed to the scheduler per frame (more than the
    /// followers can capture anyway); highest-value clusters are kept.
    pub max_tasks_per_frame: usize,
    /// Optional failure-injection scenario (paper §4.7).
    pub failure: Option<FailurePlan>,
    /// Recapture deprioritization (paper §4.7 "Recapture", implemented
    /// here as an extension): when `Some(p)`, the leader multiplies the
    /// priority of targets the constellation has already captured by
    /// `p ∈ [0, 1]`, steering followers toward new targets. `None`
    /// reproduces the paper's evaluated behaviour (no re-identification).
    pub recapture_penalty: Option<f64>,
    /// Number of orbital planes to spread groups across (paper §4.7
    /// "Orbit Design", implemented here as an extension). 1 reproduces
    /// the paper's single-plane evaluation.
    pub orbital_planes: usize,
    /// Pin group phasing to a fixed capacity of orbital slots (see
    /// [`ConstellationLayout::with_planes_slotted`]): group `g` always
    /// occupies slot `g`, so a what-if delta that adds or removes
    /// trailing groups leaves every surviving satellite's orbit
    /// bit-identical — the geometric precondition for sharing compiled
    /// tracks between parent and child scenarios (DESIGN.md §14).
    /// `None` (default) phases against the actual group count, the
    /// paper's layout; `Some(groups)` is bit-identical to `None`.
    /// Evaluation errors when the capacity is below the group count.
    pub layout_slots: Option<usize>,
    /// Optional seeded fault-injection plan (satellite outages,
    /// detector dropout, radio/ADACS derating, brownouts). `None`
    /// reproduces the fault-free paper evaluation. Shared by `Arc` so
    /// Monte-Carlo sweep loops can evaluate one large plan under many
    /// configurations without copying it per evaluation.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// How the constellation reacts to injected faults; irrelevant when
    /// `fault_plan` is `None`.
    pub degraded_mode: DegradedMode,
    /// Worker threads for the per-group frame loops inside one
    /// evaluation: `1` (default) runs sequentially, `0` uses
    /// [`eagleeye_exec::available_parallelism`]. Leader groups share no
    /// mutable state and every random draw is a pure function of
    /// `(seed, target, frame)`, so the resulting [`CoverageReport`] is
    /// identical at any thread count (see DESIGN.md §8). Keep the
    /// default when an outer sweep already parallelizes whole
    /// evaluations.
    pub threads: usize,
    /// Observability sink (see `eagleeye-obs`). The default disabled
    /// handle costs one branch per instrumentation site; an enabled
    /// handle records `core/*`, `ilp/*`, `orbit/*`, and `sim/*`
    /// counters, per-phase timers, and histograms. Parallel leader
    /// passes record into per-worker forks absorbed in leader order,
    /// so counters and histograms are identical at any thread count
    /// (timers and gauges are wall-clock/pool-shape and are exempt;
    /// see DESIGN.md §10).
    pub metrics: Metrics,
    /// Evaluate with the legacy per-frame spatial-query walk instead of
    /// the compiled access-interval engine (DESIGN.md §13). The two are
    /// bit-identical; this switch exists so the differential suite can
    /// prove it on arbitrary scenarios. Not part of the stable API.
    #[doc(hidden)]
    pub reference_frame_walk: bool,
    /// Solver tier for the ILP-backed schedulers (DESIGN.md §15).
    /// [`SolverTier::Dense`] (default) is the historical bit-stable
    /// path and preserves every golden digest; [`SolverTier::Sparse`]
    /// runs presolve + sparse revised simplex + pseudocost branching,
    /// observationally equivalent (same statuses, objectives within
    /// 1e-9) but not bit-identical in its solver diagnostics. The tier
    /// participates in the horizon-memo digest, so warm what-if
    /// re-evaluations never replay a horizon solved under a different
    /// tier. Ignored by the non-ILP schedulers.
    pub ilp_tier: SolverTier,
}

impl Default for CoverageOptions {
    fn default() -> Self {
        CoverageOptions {
            spec: SensingSpec::paper_default(),
            duration_s: 4.0 * 3600.0,
            inclination_rad: 97.2_f64.to_radians(),
            recall: 1.0,
            seed: 7,
            max_tasks_per_frame: 60,
            failure: None,
            recapture_penalty: None,
            orbital_planes: 1,
            layout_slots: None,
            fault_plan: None,
            degraded_mode: DegradedMode::default(),
            threads: 1,
            metrics: Metrics::disabled(),
            reference_frame_walk: false,
            ilp_tier: SolverTier::Dense,
        }
    }
}

/// Runs constellation configurations against a target workload.
///
/// # Example
///
/// ```no_run
/// use eagleeye_core::coverage::{ConstellationConfig, CoverageEvaluator, CoverageOptions};
/// use eagleeye_datasets::{ShipGenerator};
///
/// let ships = ShipGenerator::new().with_count(2_000).generate(1);
/// let eval = CoverageEvaluator::new(&ships, CoverageOptions::default());
/// let report = eval.evaluate(&ConstellationConfig::eagleeye(2, 1))?;
/// println!("coverage: {:.1}%", 100.0 * report.coverage_fraction());
/// # Ok::<(), eagleeye_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct CoverageEvaluator<'a> {
    targets: &'a TargetSet,
    options: CoverageOptions,
    /// Compiled-program cache (DESIGN.md §13/§14): per scenario, the
    /// batch-propagated states, access-interval membership, and
    /// horizon-solve memos, plus the cross-scenario track pool that
    /// lets a what-if fork ([`fork_with`](Self::fork_with)) inherit
    /// unaffected tracks. Repeated evaluations of the same
    /// configuration reuse the compiled program instead of
    /// recompiling; the cache is behaviour-invisible (warm and cold
    /// reports are bit-identical).
    compile: Arc<CompileCache>,
}

/// Precomputed state shared by every per-leader pass of one
/// leader-follower evaluation (see
/// [`CoverageEvaluator::leader_scenario`]).
struct LeaderScenario {
    layout: ConstellationLayout,
    grid: EpochGrid,
    leaders: Vec<SatelliteSpec>,
    n_followers: usize,
}

impl<'a> CoverageEvaluator<'a> {
    /// Creates an evaluator over a workload.
    pub fn new(targets: &'a TargetSet, options: CoverageOptions) -> Self {
        CoverageEvaluator {
            targets,
            options,
            compile: Arc::new(CompileCache::default()),
        }
    }

    /// A sibling evaluator over the same workload with different
    /// options, sharing this evaluator's compiled-program cache. This
    /// is the incremental what-if entry point (DESIGN.md §14): the fork
    /// evaluates an edited scenario, and every satellite whose compiled
    /// inputs the edit left untouched adopts the parent's track from
    /// the shared pool — memoized horizon solves included — so only
    /// dirty frames are re-solved. Sharing is behaviour-invisible: the
    /// fork's report is bit-identical to a cold evaluation of the same
    /// scenario (the delta differential suite asserts this).
    pub fn fork_with(&self, options: CoverageOptions) -> CoverageEvaluator<'a> {
        CoverageEvaluator {
            targets: self.targets,
            options,
            compile: Arc::clone(&self.compile),
        }
    }

    /// The configured options.
    pub fn options(&self) -> &CoverageOptions {
        &self.options
    }

    /// Reuse counters of the compiled-program cache: tracks built vs.
    /// reused (a reuse skips propagation and membership entirely) and
    /// horizon solves replayed from the memo vs. solved live. All zero
    /// until the first evaluation; `track_reuses` and `memo_hits` grow
    /// only on repeated evaluations of the same configuration.
    pub fn compile_stats(&self) -> CompileStats {
        self.compile.stats()
    }

    /// Evaluates one constellation configuration.
    ///
    /// # Errors
    ///
    /// Propagates orbit, geometry, and solver failures; zero-satellite
    /// configurations return an empty report rather than erroring.
    pub fn evaluate(&self, config: &ConstellationConfig) -> Result<CoverageReport, CoreError> {
        self.options.spec.validate()?;
        let _span = self.options.metrics.span("core/evaluate");
        let key = self.compile_scenario_key(config);
        let report = match *config {
            ConstellationConfig::LowResOnly { satellites } => {
                self.swath_membership(satellites, self.options.spec.low_res.swath_m(), &key)
            }
            ConstellationConfig::HighResOnly { satellites } => {
                self.swath_membership(satellites, self.options.spec.high_res.swath_m(), &key)
            }
            ConstellationConfig::EagleEye {
                groups,
                followers_per_group,
                scheduler,
                clustering,
            } => self.leader_follower(
                groups,
                followers_per_group,
                scheduler,
                clustering,
                None,
                &key,
            ),
            ConstellationConfig::MixCamera {
                satellites,
                compute_time_s,
            } => self.leader_follower(
                satellites,
                0,
                SchedulerKind::Ilp,
                ClusteringMethod::Ilp,
                Some(compute_time_s),
                &key,
            ),
        }?;
        report.record_metrics(&self.options.metrics);
        self.record_compile_gauges();
        Ok(report)
    }

    /// Compiled-program reuse state goes to gauges only: counters and
    /// histograms must stay bit-identical between warm and cold
    /// evaluations, and "how much was reused" legitimately differs
    /// (same contract as the `harden/*` gauges, DESIGN.md §10/§13).
    fn record_compile_gauges(&self) {
        let m = &self.options.metrics;
        if !m.is_enabled() {
            return;
        }
        let s = self.compile.stats();
        m.gauge_max("core/compile/track_builds", s.track_builds as f64);
        m.gauge_max("core/compile/track_reuses", s.track_reuses as f64);
        m.gauge_max("core/compile/track_shares", s.track_shares as f64);
        m.gauge_max("core/compile/memo_hits", s.memo_hits as f64);
        m.gauge_max("core/compile/memo_misses", s.memo_misses as f64);
    }

    /// The compiled-program cache key of one scenario: configuration
    /// plus the scenario hash, which binds every option shaping
    /// membership or solves. Sibling evaluators forked via
    /// [`fork_with`](Self::fork_with) share one cache, so — unlike
    /// before forking existed — the options are not fixed per cache
    /// and must participate in the key. Over-binding is safe: tracks
    /// still flow between scenario keys through the pool, keyed by
    /// exactly what a track depends on.
    fn compile_scenario_key(&self, config: &ConstellationConfig) -> String {
        format!("{config:?}#{:016x}", self.scenario_hash(config))
    }

    /// Pool digest of one satellite's compiled track: the orbital
    /// elements, grid, membership geometry, sensing spec, and workload
    /// that determine its states/intervals/coefficients, plus the
    /// scheduler label that keeps memoized horizon solves from
    /// crossing solver identities. Options that flow entirely through
    /// the per-frame [`horizon_digest`] (recall, seed, fault plan,
    /// task caps, recapture scaling) are deliberately excluded — that
    /// is what lets a what-if fork share tracks across those edits.
    // eagleeye-lint: digest-of(CoverageOptions, CompileGeometry)
    // eagleeye-lint: digest-allow(CoverageOptions::recall, CoverageOptions::seed, CoverageOptions::max_tasks_per_frame, CoverageOptions::recapture_penalty): flow through the per-frame horizon_digest (task values, caps, clip), never through the compiled track
    // eagleeye-lint: digest-allow(CoverageOptions::failure, CoverageOptions::fault_plan, CoverageOptions::degraded_mode): fault what-ifs share tracks by design; outage onsets and repairs are bound per frame by horizon_digest
    // eagleeye-lint: digest-allow(CoverageOptions::orbital_planes, CoverageOptions::layout_slots): bound through the satellite's orbital elements already digested via the SatelliteSpec debug string
    // eagleeye-lint: digest-allow(CoverageOptions::threads, CoverageOptions::metrics, CoverageOptions::reference_frame_walk): execution shape and observability only — compiled tracks are bit-identical across them (DESIGN.md section 8/10/13)
    // eagleeye-lint: digest-allow(CoverageOptions::ilp_tier): memo discriminant carried by horizon_digest, not by the track pool
    fn track_digest(&self, sat: &SatelliteSpec, geom: &CompileGeometry, sched_label: &str) -> u64 {
        let o = &self.options;
        let mut h = ScenarioHasher::new();
        h.str("eagleeye-core/track/v1")
            .str(&format!("{sat:?}"))
            .str(&format!("{:?}", o.spec))
            .f64(o.duration_s)
            .f64(o.inclination_rad)
            .f64(geom.bound_m)
            .f64(geom.half_cross_m)
            .f64(geom.half_along_m)
            .str(sched_label)
            .u64(self.targets.len() as u64)
            .f64(self.targets.total_value());
        h.finish()
    }

    /// Builds the constellation layout for this evaluator's options:
    /// slot-pinned when [`CoverageOptions::layout_slots`] is set,
    /// legacy even phasing otherwise.
    fn layout_for(
        &self,
        groups: usize,
        followers_per_group: usize,
    ) -> Result<ConstellationLayout, CoreError> {
        let planes = self.options.orbital_planes.max(1);
        let layout = match self.options.layout_slots {
            Some(slots) => ConstellationLayout::with_planes_slotted(
                groups,
                followers_per_group,
                self.options.spec.altitude_m,
                self.options.inclination_rad,
                planes,
                slots,
            ),
            None => ConstellationLayout::with_planes(
                groups,
                followers_per_group,
                self.options.spec.altitude_m,
                self.options.inclination_rad,
                planes,
            ),
        };
        Ok(layout?)
    }

    /// A stable, process-independent fingerprint of everything that
    /// determines this evaluation's result: the constellation
    /// configuration, the sensing/fault/scheduling options, and the
    /// workload. Checkpoints are bound to this hash so a `--resume`
    /// against a different scenario is rejected instead of silently
    /// merging incompatible partials.
    ///
    /// Execution-shape options (`threads`, `metrics`) are deliberately
    /// excluded: the result is identical at any thread count, so a run
    /// may legitimately resume with a different pool size.
    // eagleeye-lint: digest-of(CoverageOptions)
    // eagleeye-lint: digest-allow(CoverageOptions::threads, CoverageOptions::metrics): execution shape and observability — the report is identical at any thread count, so resuming under a different pool size or sink must stay legal
    // eagleeye-lint: digest-allow(CoverageOptions::reference_frame_walk): bit-identical engine selector (proven by the differential suite); binding it would reject resumes that merely switched engines
    pub fn scenario_hash(&self, config: &ConstellationConfig) -> u64 {
        let o = &self.options;
        let mut h = ScenarioHasher::new();
        // Domain bumped v1 -> v2 when `ilp_tier` joined the hash: the
        // sparse tier is only observationally equivalent, so a resume
        // must not merge partials solved under a different tier.
        h.str("eagleeye-core/coverage/v2")
            .str(&format!("{config:?}"))
            .str(&format!("{:?}", o.spec))
            .f64(o.duration_s)
            .f64(o.inclination_rad)
            .f64(o.recall)
            .u64(o.seed)
            .u64(o.max_tasks_per_frame as u64)
            .str(&format!("{:?}", o.failure))
            .str(&format!("{:?}", o.recapture_penalty))
            .u64(o.orbital_planes as u64)
            .str(&format!("{:?}", o.layout_slots))
            .str(&format!("{:?}", o.fault_plan))
            .str(&format!("{:?}", o.degraded_mode))
            .str(&format!("{:?}", o.ilp_tier))
            .u64(self.targets.len() as u64)
            .f64(self.targets.total_value());
        h.finish()
    }

    /// Evaluates one constellation configuration under the crash-safe
    /// run layer (`eagleeye-harden`): per-leader passes are supervised
    /// (panics retried, then quarantined), partial results are
    /// checkpointed on a cadence and restored on resume, and a
    /// wall-clock deadline or shutdown request degrades the run into a
    /// valid partial report
    /// ([`CoverageReport::degraded`] = `true`) instead of aborting.
    ///
    /// With inert [`HardenOptions`] and no faults, the report is
    /// bit-identical (modulo the wall-clock timers exempted by
    /// [`CoverageReport::same_outcome`]) to
    /// [`evaluate`](Self::evaluate), at any thread count; recorded
    /// counters and histograms match too, except the `exec/*` family
    /// (the hardened runner dispatches work itself rather than through
    /// [`ExecPool`]) — `harden/*` state is recorded as gauges only.
    ///
    /// Swath-membership configurations and recapture-penalty runs do
    /// not decompose into independent leader passes; they fall back to
    /// the plain evaluator (complete or erroring, never partial).
    ///
    /// # Errors
    ///
    /// Everything [`evaluate`](Self::evaluate) returns, plus
    /// [`CoreError::Harden`] for checkpoint I/O or validation failures
    /// and for leader passes that failed with an error (errors are
    /// checkpointed and replayed deterministically on resume).
    pub fn evaluate_hardened(
        &self,
        config: &ConstellationConfig,
        harden: &HardenOptions,
    ) -> Result<HardenedOutcome, CoreError> {
        self.options.spec.validate()?;
        let decomposed = match *config {
            ConstellationConfig::EagleEye {
                groups,
                followers_per_group,
                scheduler,
                clustering,
            } => Some((groups, followers_per_group, scheduler, clustering, None)),
            ConstellationConfig::MixCamera {
                satellites,
                compute_time_s,
            } => Some((
                satellites,
                0,
                SchedulerKind::Ilp,
                ClusteringMethod::Ilp,
                Some(compute_time_s),
            )),
            ConstellationConfig::LowResOnly { .. } | ConstellationConfig::HighResOnly { .. } => {
                None
            }
        };
        let Some((groups, followers_per_group, scheduler_kind, clustering_method, mix_compute_s)) =
            decomposed.filter(|_| self.options.recapture_penalty.is_none())
        else {
            let report = self.evaluate(config)?;
            return Ok(HardenedOutcome {
                report,
                quarantined: Vec::new(),
                resumed_passes: 0,
                degrade_reason: None,
            });
        };

        let _span = self.options.metrics.span("core/evaluate");
        let mut report = CoverageReport {
            total: self.targets.len(),
            total_value: self.targets.total_value(),
            ..Default::default()
        };
        let Some(sc) =
            self.leader_scenario(groups, followers_per_group, mix_compute_s.is_some())?
        else {
            report.record_metrics(&self.options.metrics);
            return Ok(HardenedOutcome {
                report,
                quarantined: Vec::new(),
                resumed_passes: 0,
                degrade_reason: None,
            });
        };

        let scenario = self
            .compile
            .scenario(&self.compile_scenario_key(config), sc.leaders.len());
        let run_config = RunConfig {
            scenario_hash: self.scenario_hash(config),
            threads: self.effective_threads(),
            checkpoint: harden.checkpoint.clone(),
            deadline: harden.deadline,
            shutdown: harden.shutdown.clone(),
            retry: harden.retry,
        };
        let outcome = run_items(&run_config, sc.leaders.len(), |i| {
            // Same fork/absorb-in-leader-order discipline as the plain
            // parallel path, but the fork snapshot travels inside the
            // checkpoint payload so resumed runs replay it exactly.
            let metrics = self.options.metrics.fork();
            let mut part = CoverageReport::with_frame_capacity(sc.grid.len());
            let mut own = vec![false; self.targets.len()];
            let result = self
                .leader_pass(
                    &sc.leaders[i],
                    i,
                    &scenario,
                    &sc.layout,
                    sc.n_followers,
                    mix_compute_s,
                    scheduler_kind,
                    clustering_method,
                    &sc.grid,
                    &metrics,
                    &mut own,
                    &mut part,
                )
                .map(|()| (part, own, metrics.snapshot()))
                .map_err(|e| e.to_string());
            encode_leader_payload(result)
        })
        .map_err(|e| CoreError::Harden {
            message: e.to_string(),
        })?;

        let mut captured = vec![false; self.targets.len()];
        let mut completed = 0usize;
        for (i, payload) in outcome.payloads.iter().enumerate() {
            let Some(bytes) = payload else { continue };
            let decoded = decode_leader_payload(bytes).map_err(|e| CoreError::Harden {
                message: format!("leader pass {i}: {e}"),
            })?;
            match decoded {
                Ok((part, own, registry)) => {
                    report.absorb(part);
                    for (c, o) in captured.iter_mut().zip(&own) {
                        *c |= *o;
                    }
                    self.options.metrics.absorb_registry(&registry);
                    completed += 1;
                }
                Err(message) => {
                    return Err(CoreError::Harden {
                        message: format!("leader pass {i} failed: {message}"),
                    });
                }
            }
        }
        self.finalize_captured(&mut report, &captured);
        report.leader_passes_total = sc.leaders.len();
        report.leader_passes_completed = completed;
        report.degraded = completed < sc.leaders.len();

        // Run-layer state goes to gauges only: counters and histograms
        // must stay bit-identical between a resumed and an
        // uninterrupted run, and "how the work got done" legitimately
        // differs between the two (see DESIGN.md §10 and §12).
        let m = &self.options.metrics;
        m.gauge_max("harden/leader_passes_total", sc.leaders.len() as f64);
        m.gauge_max("harden/leader_passes_completed", completed as f64);
        m.gauge_max(
            "harden/completion/leader_pass",
            report.completion_fraction(),
        );
        m.gauge_max("harden/resumed_passes", outcome.resumed_items as f64);
        m.gauge_max(
            "harden/quarantined_passes",
            outcome.quarantined.len() as f64,
        );
        m.gauge_max("harden/degraded", f64::from(u8::from(report.degraded)));
        report.record_metrics(m);
        self.record_compile_gauges();

        Ok(HardenedOutcome {
            report,
            quarantined: outcome.quarantined,
            resumed_passes: outcome.resumed_items,
            degrade_reason: outcome.degrade_reason,
        })
    }

    /// Effective worker count for intra-evaluation parallelism.
    fn effective_threads(&self) -> usize {
        if self.options.threads == 0 {
            eagleeye_exec::available_parallelism()
        } else {
            self.options.threads
        }
    }

    /// Folds a per-satellite captured bitmap into the evaluation-wide
    /// one and finalizes the captured totals.
    fn finalize_captured(&self, report: &mut CoverageReport, captured: &[bool]) {
        report.captured = captured.iter().filter(|c| **c).count();
        report.captured_value = captured
            .iter()
            .enumerate()
            .filter(|(_, c)| **c)
            .map(|(i, _)| self.targets.target(i).value)
            .sum();
    }

    /// Homogeneous constellation: coverage = swath membership over time.
    ///
    /// Compile phase: each satellite's track is compiled once per
    /// configuration — batch propagation plus the access-interval
    /// membership sweep — with the membership work fanned out over
    /// `(satellite × frame-range)` items through [`ExecPool`] and
    /// merged in item order (deterministic at any thread count; see
    /// DESIGN.md §13). Evaluate phase: coverage is the union of each
    /// track's interval targets (capture marking is idempotent), so
    /// warm evaluations touch no geometry at all.
    fn swath_membership(
        &self,
        satellites: usize,
        swath_m: f64,
        cache_key: &str,
    ) -> Result<CoverageReport, CoreError> {
        let mut report = CoverageReport {
            total: self.targets.len(),
            total_value: self.targets.total_value(),
            ..Default::default()
        };
        if satellites == 0 || self.targets.is_empty() {
            return Ok(report);
        }
        let spec = &self.options.spec;
        let layout = self.layout_for(satellites, 0)?;
        let grid = EpochGrid::for_horizon(0.0, self.options.duration_s, spec.frame_cadence_s);
        let frame_len = spec.frame_length_m();
        let bound = ((swath_m / 2.0).powi(2) + (frame_len / 2.0).powi(2)).sqrt() + 2_000.0;
        let mut captured = vec![false; self.targets.len()];

        if self.options.reference_frame_walk {
            return self.swath_membership_reference(
                &layout, &grid, swath_m, frame_len, bound, report, captured,
            );
        }

        let geom = CompileGeometry {
            bound_m: bound,
            half_cross_m: swath_m / 2.0,
            half_along_m: frame_len / 2.0,
        };
        let sats = layout.satellites();
        let scenario = self.compile.scenario(cache_key, sats.len());
        let mut missing = Vec::new();
        for i in 0..sats.len() {
            if scenario.track(i).is_some() {
                self.compile.note_reuse();
            } else if let Some(track) = self
                .compile
                .pool_get(self.track_digest(&sats[i], &geom, "swath"))
            {
                // A sibling scenario (typically a what-if fork) already
                // compiled this exact track; adopt it.
                self.compile.note_share();
                scenario.store(i, track);
            } else {
                missing.push(i);
            }
        }
        let threads = self.effective_threads();
        if !missing.is_empty() {
            if threads > 1 && !grid.is_empty() {
                let pool = ExecPool::new(threads);
                // Propagate the missing satellites in parallel; orbit
                // counters land in per-item forks absorbed in item
                // order — same totals as the sequential path.
                let rows = pool.try_par_map_observed(
                    &self.options.metrics,
                    &missing,
                    |_, &i, metrics| {
                        let sw = Stopwatch::start();
                        let states =
                            grid.propagate_observed(&layout.ground_track(&sats[i])?, metrics)?;
                        Ok::<_, CoreError>((states, sw.elapsed()))
                    },
                )?;
                for (_, prop) in &rows {
                    report.propagate_time += *prop;
                }
                // Membership sweep over (satellite × frame-range) work
                // items; merging in item order makes the compiled
                // program independent of worker scheduling.
                let ranges = eagleeye_exec::chunk_ranges(grid.len(), threads.saturating_mul(2));
                let items: Vec<(usize, std::ops::Range<usize>)> = (0..missing.len())
                    .flat_map(|mi| ranges.iter().cloned().map(move |r| (mi, r)))
                    .collect();
                let parts = pool.try_par_map(&items, |_, (mi, range)| {
                    membership_chunk(
                        &rows[*mi].0,
                        grid.epochs(),
                        range.clone(),
                        self.targets,
                        &geom,
                    )
                })?;
                let mut parts = parts.into_iter();
                for (mi, (states, _)) in rows.into_iter().enumerate() {
                    let sat_parts: Vec<_> = parts.by_ref().take(ranges.len()).collect();
                    let track = Arc::new(CompiledTrack::assemble(states, sat_parts));
                    self.compile.note_build();
                    let digest = self.track_digest(&sats[missing[mi]], &geom, "swath");
                    scenario.store(missing[mi], self.compile.pool_put(digest, track));
                }
            } else {
                for &i in &missing {
                    self.get_or_compile_track(
                        &scenario,
                        i,
                        &sats[i],
                        &layout,
                        &grid,
                        &geom,
                        "swath",
                        &self.options.metrics,
                        &mut report,
                    )?;
                }
            }
        }

        for i in 0..sats.len() {
            // Every slot was filled by the compile phase above; falling
            // back to a fresh compile (rather than unwrapping) keeps
            // the invariant local and total.
            let track = match scenario.track(i) {
                Some(track) => track,
                None => self.get_or_compile_track(
                    &scenario,
                    i,
                    &sats[i],
                    &layout,
                    &grid,
                    &geom,
                    "swath",
                    &self.options.metrics,
                    &mut report,
                )?,
            };
            report.frames_processed += track.states.len();
            for &tgt in &track.intervals.target {
                captured[tgt as usize] = true;
            }
        }
        self.finalize_captured(&mut report, &captured);
        Ok(report)
    }

    /// The legacy per-frame-query swath walk, kept as the reference
    /// implementation the differential suite compares the compiled
    /// engine against (`CoverageOptions::reference_frame_walk`).
    #[allow(clippy::too_many_arguments)]
    fn swath_membership_reference(
        &self,
        layout: &ConstellationLayout,
        grid: &EpochGrid,
        swath_m: f64,
        frame_len: f64,
        bound: f64,
        mut report: CoverageReport,
        mut captured: Vec<bool>,
    ) -> Result<CoverageReport, CoreError> {
        let pass = |sat: &SatelliteSpec,
                    captured: &mut [bool],
                    metrics: &Metrics|
         -> Result<(usize, std::time::Duration), CoreError> {
            // Batch-propagate this satellite over the horizon once; the
            // frame loop reads cached states.
            let prop_sw = Stopwatch::start();
            let states = grid.propagate_observed(&layout.ground_track(sat)?, metrics)?;
            let prop_elapsed = prop_sw.elapsed();
            for (state, &t) in states.iter().zip(grid.epochs()) {
                let frame =
                    LocalFrame::new(state.subsatellite.with_altitude(0.0)?, state.heading_rad);
                for idx in
                    self.targets
                        .query_radius(&state.subsatellite.with_altitude(0.0)?, bound, t)
                {
                    if captured[idx] {
                        continue;
                    }
                    let p = self.targets.target(idx).position_at(t);
                    let (x, y) = frame.project(&p);
                    if x.abs() <= swath_m / 2.0 && y.abs() <= frame_len / 2.0 {
                        captured[idx] = true;
                    }
                }
            }
            Ok((states.len(), prop_elapsed))
        };

        let threads = self.effective_threads();
        if threads > 1 && layout.satellites().len() > 1 {
            let pool = ExecPool::new(threads);
            let parts = pool.try_par_map_observed(
                &self.options.metrics,
                layout.satellites(),
                |_, sat, metrics| {
                    let mut own = vec![false; self.targets.len()];
                    let (frames, prop) = pass(sat, &mut own, metrics)?;
                    Ok::<_, CoreError>((frames, prop, own))
                },
            )?;
            for (frames, prop, own) in parts {
                report.frames_processed += frames;
                report.propagate_time += prop;
                for (c, o) in captured.iter_mut().zip(&own) {
                    *c |= *o;
                }
            }
        } else {
            for sat in layout.satellites() {
                let (frames, prop) = pass(sat, &mut captured, &self.options.metrics)?;
                report.frames_processed += frames;
                report.propagate_time += prop;
            }
        }
        self.finalize_captured(&mut report, &captured);
        Ok(report)
    }

    /// The compiled track for scenario slot `slot`, compiling it
    /// (batch propagation plus the single-chunk membership sweep) on
    /// first use. Propagation counters are recorded into `metrics` and
    /// propagation wall time into `report` exactly where the legacy
    /// walk recorded them, so a cold compiled evaluation is counter-
    /// identical to the frame walk; a warm one records neither (the
    /// work did not happen).
    #[allow(clippy::too_many_arguments)]
    fn get_or_compile_track(
        &self,
        scenario: &CompiledScenario,
        slot: usize,
        sat: &SatelliteSpec,
        layout: &ConstellationLayout,
        grid: &EpochGrid,
        geom: &CompileGeometry,
        sched_label: &str,
        metrics: &Metrics,
        report: &mut CoverageReport,
    ) -> Result<Arc<CompiledTrack>, CoreError> {
        if let Some(track) = scenario.track(slot) {
            self.compile.note_reuse();
            return Ok(track);
        }
        let digest = self.track_digest(sat, geom, sched_label);
        if let Some(track) = self.compile.pool_get(digest) {
            // Adopted from a sibling scenario's compile (what-if fork):
            // no propagation happened here, so no counters are recorded.
            self.compile.note_share();
            return Ok(scenario.store(slot, track));
        }
        let sw = Stopwatch::start();
        let states = grid.propagate_observed(&layout.ground_track(sat)?, metrics)?;
        report.propagate_time += sw.elapsed();
        let part = membership_chunk(&states, grid.epochs(), 0..grid.len(), self.targets, geom)?;
        let track = Arc::new(CompiledTrack::assemble(states, vec![part]));
        self.compile.note_build();
        Ok(scenario.store(slot, self.compile.pool_put(digest, track)))
    }

    /// Shared setup for the per-leader passes of an EagleEye or
    /// Mix-Camera evaluation: constellation layout, the epoch grid
    /// (frame epochs plus per-epoch sidereal trig, computed once and
    /// shared by every leader's batch propagation), and the leader
    /// roster. Returns `None` for configurations with nothing to run
    /// (no groups, no targets, or no followers to capture with), which
    /// evaluate to the empty base report.
    ///
    /// Computing this up front keeps the plain
    /// ([`leader_follower`](Self::leader_follower)) and crash-safe
    /// ([`evaluate_hardened`](Self::evaluate_hardened)) paths
    /// structurally identical, which is what makes their reports
    /// bit-comparable.
    fn leader_scenario(
        &self,
        groups: usize,
        followers_per_group: usize,
        is_mix: bool,
    ) -> Result<Option<LeaderScenario>, CoreError> {
        if groups == 0 || self.targets.is_empty() {
            return Ok(None);
        }
        let n_followers = if is_mix { 1 } else { followers_per_group };
        if n_followers == 0 {
            // An EagleEye group without followers captures nothing in
            // high resolution.
            return Ok(None);
        }
        let spec = &self.options.spec;
        let layout = self.layout_for(groups, if is_mix { 0 } else { followers_per_group })?;
        let grid = EpochGrid::for_horizon(0.0, self.options.duration_s, spec.frame_cadence_s);
        let leaders: Vec<_> = layout
            .satellites()
            .iter()
            .filter(|s| s.role == eagleeye_orbit::SatelliteRole::Leader)
            .copied()
            .collect();
        Ok(Some(LeaderScenario {
            layout,
            grid,
            leaders,
            n_followers,
        }))
    }

    /// Leader-follower (EagleEye) and mix-camera evaluation.
    ///
    /// Each group's frame loop is independent — followers only ever
    /// serve their own leader, capture marking is idempotent, and every
    /// stochastic draw is a pure function of `(seed, target, frame)` —
    /// so the per-leader passes run in parallel when
    /// [`CoverageOptions::threads`] allows, merging partial reports and
    /// OR-ing captured bitmaps in leader order. The one coupling is
    /// recapture deprioritization, which reads the shared captured set;
    /// that path stays sequential to preserve its exact semantics.
    fn leader_follower(
        &self,
        groups: usize,
        followers_per_group: usize,
        scheduler_kind: SchedulerKind,
        clustering_method: ClusteringMethod,
        mix_compute_s: Option<f64>,
        cache_key: &str,
    ) -> Result<CoverageReport, CoreError> {
        let mut report = CoverageReport {
            total: self.targets.len(),
            total_value: self.targets.total_value(),
            ..Default::default()
        };
        let Some(sc) =
            self.leader_scenario(groups, followers_per_group, mix_compute_s.is_some())?
        else {
            return Ok(report);
        };

        let scenario = self.compile.scenario(cache_key, sc.leaders.len());
        let threads = self.effective_threads();
        let mut captured = vec![false; self.targets.len()];
        if threads > 1 && sc.leaders.len() > 1 && self.options.recapture_penalty.is_none() {
            let pool = ExecPool::new(threads);
            let parts = pool.try_par_map_observed(
                &self.options.metrics,
                &sc.leaders,
                |i, leader, metrics| {
                    let mut part = CoverageReport::with_frame_capacity(sc.grid.len());
                    let mut own = vec![false; self.targets.len()];
                    self.leader_pass(
                        leader,
                        i,
                        &scenario,
                        &sc.layout,
                        sc.n_followers,
                        mix_compute_s,
                        scheduler_kind,
                        clustering_method,
                        &sc.grid,
                        metrics,
                        &mut own,
                        &mut part,
                    )?;
                    Ok::<_, CoreError>((part, own))
                },
            )?;
            for (part, own) in parts {
                report.absorb(part);
                for (c, o) in captured.iter_mut().zip(&own) {
                    *c |= *o;
                }
            }
        } else {
            for (i, leader) in sc.leaders.iter().enumerate() {
                let mut part = CoverageReport::with_frame_capacity(sc.grid.len());
                self.leader_pass(
                    leader,
                    i,
                    &scenario,
                    &sc.layout,
                    sc.n_followers,
                    mix_compute_s,
                    scheduler_kind,
                    clustering_method,
                    &sc.grid,
                    &self.options.metrics,
                    &mut captured,
                    &mut part,
                )?;
                report.absorb(part);
            }
        }
        self.finalize_captured(&mut report, &captured);
        report.leader_passes_completed = sc.leaders.len();
        report.leader_passes_total = sc.leaders.len();
        Ok(report)
    }

    /// One leader group's full pass over the horizon: detection,
    /// clustering, follower scheduling, and capture execution, writing
    /// marks into `captured` and counters into `report`.
    #[allow(clippy::too_many_arguments)]
    fn leader_pass(
        &self,
        leader: &SatelliteSpec,
        leader_idx: usize,
        compiled: &CompiledScenario,
        layout: &ConstellationLayout,
        n_followers: usize,
        mix_compute_s: Option<f64>,
        scheduler_kind: SchedulerKind,
        clustering_method: ClusteringMethod,
        grid: &EpochGrid,
        metrics: &Metrics,
        captured: &mut [bool],
        report: &mut CoverageReport,
    ) -> Result<(), CoreError> {
        let spec = self.options.spec;
        let is_mix = mix_compute_s.is_some();
        // The ILP and resilient schedulers are held concretely (not
        // behind the trait object) so per-horizon solver diagnostics,
        // outcomes, and repairs can be recorded in the report.
        enum ActiveScheduler {
            Plain(Box<dyn Scheduler>),
            Ilp(IlpScheduler),
            Resilient(ResilientScheduler),
        }
        let scheduler = match scheduler_kind {
            SchedulerKind::Ilp => ActiveScheduler::Ilp(IlpScheduler {
                tier: self.options.ilp_tier,
                ..IlpScheduler::default()
            }),
            SchedulerKind::Greedy => ActiveScheduler::Plain(Box::new(GreedyScheduler)),
            SchedulerKind::Abb => {
                ActiveScheduler::Plain(Box::new(AbbScheduler::with_frame_deadline()))
            }
            SchedulerKind::Resilient => {
                let mut resilient = ResilientScheduler::default();
                resilient.ilp.tier = self.options.ilp_tier;
                ActiveScheduler::Resilient(resilient)
            }
        };
        let fault_plan = self.options.fault_plan.as_deref();
        let fault_aware = self.options.degraded_mode == DegradedMode::Resilient;

        let frame_len = spec.frame_length_m();
        let low_swath = spec.low_res.swath_m();
        let high_swath = spec.high_res.swath_m();
        let v = spec.ground_speed_m_s;
        let bound = ((low_swath / 2.0).powi(2) + (frame_len / 2.0).powi(2)).sqrt() + 2_000.0;
        let return_slew_s = spec.adacs.min_slew_time_s(spec.theta_max_rad);

        // Compile or reuse this leader's track: batch propagation plus
        // the access-interval membership sweep, cached per
        // configuration (DESIGN.md §13). The reference path propagates
        // directly and queries per frame, exactly as before the
        // compiled engine existed.
        let geom = CompileGeometry {
            bound_m: bound,
            half_cross_m: low_swath / 2.0,
            half_along_m: frame_len / 2.0,
        };
        let (track, reference_states): (Option<Arc<CompiledTrack>>, Option<Vec<TrackState>>) =
            if self.options.reference_frame_walk {
                let prop_sw = Stopwatch::start();
                let states = grid.propagate_observed(&layout.ground_track(leader)?, metrics)?;
                report.propagate_time += prop_sw.elapsed();
                (None, Some(states))
            } else {
                let track = self.get_or_compile_track(
                    compiled,
                    leader_idx,
                    leader,
                    layout,
                    grid,
                    &geom,
                    &format!("{scheduler_kind:?}"),
                    metrics,
                    report,
                )?;
                (Some(track), None)
            };
        let states: &[TrackState] = match (&track, &reference_states) {
            (Some(t), _) => &t.states,
            (None, Some(s)) => s,
            (None, None) => unreachable!("one membership source is always set"),
        };
        let mut sweep = track.as_deref().map(IntervalSweep::new);
        // Per-frame detection timing costs two clock reads per frame,
        // so it only runs under enabled metrics (the report field stays
        // zero otherwise; timers are exempt from `same_outcome`).
        let time_detection = metrics.is_enabled();

        // Follower runtime state carried across frames.
        let trails: Vec<f64> = (0..n_followers)
            .map(|k| {
                if is_mix {
                    0.0
                } else {
                    ConstellationLayout::DEFAULT_LEAD_DISTANCE_M
                        + k as f64 * ConstellationLayout::DEFAULT_FOLLOWER_SPACING_M
                }
            })
            .collect();
        let mut avail: Vec<f64> = vec![0.0; n_followers];
        let mut pointing: Vec<(f64, f64)> = vec![(0.0, 0.0); n_followers];

        // Per-frame scratch, hoisted out of the loop and cleared each
        // frame instead of reallocated — sized to the compiled track's
        // peak per-frame membership so no frame ever regrows them.
        let peak = track.as_ref().map_or(0, |t| t.peak_frame_entries);
        let mut in_frame: Vec<(usize, f64, f64)> = Vec::with_capacity(peak);
        let mut detected: Vec<(usize, f64, f64)> = Vec::with_capacity(peak);
        let mut points: Vec<(crate::pointing::GroundPoint, f64)> = Vec::with_capacity(peak);
        let mut failed: Vec<usize> = Vec::with_capacity(n_followers);
        let mut active: Vec<usize> = Vec::with_capacity(n_followers);

        for (frame_idx, state) in states.iter().enumerate() {
            let t = grid.epochs()[frame_idx];
            let frame_id = frame_idx as u64;
            report.frames_processed += 1;
            if let Some(p) = fault_plan {
                p.record_frame_activity(t, metrics);
            }
            let subsat = state.subsatellite.with_altitude(0.0)?;
            let frame = LocalFrame::new(subsat, state.heading_rad);

            let legacy_leader_failed = self
                .options
                .failure
                .as_ref()
                .map(|f| f.leader_failed && t >= f.fail_at_s)
                .unwrap_or(false);
            let fault_leader_out = fault_plan.map(|p| p.leader_out(t)).unwrap_or(false);
            if fault_leader_out {
                report.frames_leader_down += 1;
            }
            let leader_failed = legacy_leader_failed || fault_leader_out;

            // Targets inside the low-resolution frame: swept from the
            // compiled interval events (O(targets in view), no spatial
            // query), or re-derived per frame on the reference path.
            match sweep.as_mut() {
                Some(sw) => sw.advance(frame_idx as u32, &mut in_frame),
                None => {
                    in_frame.clear();
                    for idx in self.targets.query_radius(&subsat, bound, t) {
                        let p = self.targets.target(idx).position_at(t);
                        let (x, y) = frame.project(&p);
                        if x.abs() <= low_swath / 2.0 && y.abs() <= frame_len / 2.0 {
                            in_frame.push((idx, x, y));
                        }
                    }
                }
            }
            if in_frame.is_empty() {
                continue;
            }
            report.frames_with_targets += 1;

            if leader_failed {
                // §4.7 fallback: followers capture nadir high-res.
                for &(idx, x, _) in &in_frame {
                    if x.abs() <= high_swath / 2.0 {
                        captured[idx] = true;
                    }
                }
                continue;
            }

            // A battery brownout inhibits all follower capture; a
            // fully derated radio cannot uplink any tasks. Either
            // way the frame produces no scheduled captures.
            let radio_factor = fault_plan
                .map(|p| p.radio_capacity_factor(t))
                .unwrap_or(1.0);
            let task_cap =
                ((self.options.max_tasks_per_frame as f64) * radio_factor).floor() as usize;
            if fault_plan.map(|p| p.brownout(t)).unwrap_or(false) || task_cap == 0 {
                continue;
            }

            // Onboard detection with the recall model, plus any
            // active detector-dropout fault (extra, independently
            // rolled false negatives).
            let det_sw = time_detection.then(Stopwatch::start);
            detected.clear();
            detected.extend(in_frame.iter().copied().filter(|&(idx, _, _)| {
                detection_roll(self.options.seed, idx as u64, frame_id) < self.options.recall
                    && !fault_plan
                        .map(|p| p.detector_drops(idx as u64, frame_id, t))
                        .unwrap_or(false)
            }));
            if let Some(sw) = det_sw {
                report.detect_time += sw.elapsed();
            }
            report.per_frame_target_counts.push(detected.len());
            if detected.is_empty() {
                continue;
            }

            // Target clustering (§4.1), with optional recapture
            // deprioritization (§4.7 extension): already-captured
            // targets get their priority scaled down so followers
            // favor new ones.
            points.clear();
            points.extend(detected.iter().map(|&(idx, x, y)| {
                let mut value = self.targets.target(idx).value;
                if let Some(p) = self.options.recapture_penalty {
                    if captured[idx] {
                        value *= p.clamp(0.0, 1.0);
                    }
                }
                (crate::pointing::GroundPoint::new(x, y), value)
            }));
            let clu_sw = Stopwatch::start();
            let mut clusters = cluster(&points, high_swath, high_swath, clustering_method)?;
            report.clustering_time += clu_sw.elapsed();
            report.per_frame_cluster_counts.push(clusters.len());

            // Keep the most valuable clusters up to the cap (shrunk
            // further when a radio-derate fault limits task uplink).
            if clusters.len() > task_cap {
                clusters.sort_by(|a, b| b.value.total_cmp(&a.value));
                clusters.truncate(task_cap);
            }

            // Build the scheduling problem in absolute along-track
            // coordinates so follower state carries across frames.
            let along_origin = v * t;
            // `tasks` and `follower_states` are consumed by value by the
            // scheduling problem, so their allocations cannot be reused
            // across frames the way the scratch buffers above are.
            let tasks: Vec<TaskSpec> = clusters
                .iter()
                .map(|c| TaskSpec::new(c.center.cross_m, along_origin + c.center.along_m, c.value))
                .collect();
            failed.clear();
            if let Some(f) = self.options.failure.as_ref().filter(|f| t >= f.fail_at_s) {
                failed.extend_from_slice(&f.failed_followers);
            }
            // A fault-aware leader also excludes followers it knows
            // to be out; a naive one keeps tasking them and loses
            // those captures at execution time.
            if fault_aware {
                if let Some(p) = fault_plan {
                    for k in 0..n_followers {
                        if p.follower_out(k, t) && !failed.contains(&k) {
                            failed.push(k);
                        }
                    }
                }
            }
            let follower_states: Vec<FollowerState> = (0..n_followers)
                .filter(|k| !failed.contains(k))
                .map(|k| FollowerState {
                    along_at_0_m: -trails[k],
                    available_from_s: avail[k],
                    pointing_offset: pointing[k],
                })
                .collect();
            if follower_states.is_empty() {
                continue;
            }
            active.clear();
            active.extend((0..n_followers).filter(|k| !failed.contains(k)));

            // An active slew-derate fault slows every follower's
            // reaction wheels for this horizon.
            let slew_factor = fault_plan
                .map(|p| p.slew_rate_factor(t))
                .unwrap_or(1.0)
                .clamp(0.01, 1.0);
            let frame_spec = if slew_factor < 1.0 {
                spec.with_adacs(Adacs::new(
                    spec.adacs.rate_rad_s().to_degrees() * slew_factor,
                    spec.adacs.overhead_s(),
                )?)
            } else {
                spec
            };

            let clip = mix_compute_s.map(|d| TimeWindow {
                start_s: t + d,
                end_s: t + spec.frame_cadence_s - return_slew_s,
            });
            // Mid-horizon outage onsets for this frame, computed before
            // the digest so they participate in it: two scenarios whose
            // fault plans differ only mid-frame would otherwise collide
            // on a digest and replay the wrong (un-repaired) memo.
            let repair_failures: Vec<(usize, f64)> = match (fault_aware, fault_plan, &scheduler) {
                (true, Some(p), ActiveScheduler::Resilient(_)) => active
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, &k)| {
                        p.follower_outage_onset(k, t, t + spec.frame_cadence_s)
                            .map(|onset| (slot, onset))
                    })
                    .collect(),
                _ => Vec::new(),
            };
            // Digest the exact solver inputs before the problem
            // consumes them: the compiled track memoizes each solved
            // horizon (including any fault repair) under this digest,
            // so a warm evaluation replays the recorded result instead
            // of re-solving. Any input divergence — fault modifiers,
            // recapture-scaled task values, drifted follower state —
            // changes the digest and forces a live solve.
            let digest = track.as_ref().map(|tr| {
                (
                    tr,
                    horizon_digest(
                        frame_idx,
                        t,
                        task_cap,
                        slew_factor,
                        clip.as_ref().map(|w| (w.start_s, w.end_s)),
                        &tasks,
                        &active,
                        &follower_states,
                        &repair_failures,
                        self.options.ilp_tier,
                    ),
                )
            });
            let problem =
                SchedulingProblem::new_with_clip(frame_spec, tasks, follower_states, clip)?;
            let memo = digest.as_ref().and_then(|(tr, d)| tr.solved_get(*d));
            let sched_sw = Stopwatch::start();
            let mut schedule;
            if let Some(hit) = memo {
                // Replay: apply exactly the report mutations the live
                // solve made, then reuse its post-repair schedule.
                self.compile.note_memo_hit();
                if let Some(stats) = hit.ilp_stats.as_ref() {
                    report.add_ilp_stats(stats);
                }
                match hit.outcome {
                    SolvedOutcome::Plain => {}
                    SolvedOutcome::IlpHorizon => report.ilp_horizons += 1,
                    SolvedOutcome::GreedyFallback { deadline } => {
                        report.greedy_fallbacks += 1;
                        if deadline {
                            report.deadline_fallbacks += 1;
                        }
                    }
                }
                report.scheduler_time += sched_sw.elapsed();
                report.scheduler_calls += 1;
                report.repairs_attempted += hit.repairs_attempted;
                report.tasks_dropped_by_failures += hit.dropped_tasks;
                report.tasks_reassigned += hit.reassigned_tasks;
                schedule = hit.schedule;
            } else {
                if digest.is_some() {
                    self.compile.note_memo_miss();
                }
                let mut solved = SolvedHorizon {
                    schedule: Schedule::default(),
                    ilp_stats: None,
                    outcome: SolvedOutcome::Plain,
                    repairs_attempted: 0,
                    dropped_tasks: 0,
                    reassigned_tasks: 0,
                };
                schedule = match &scheduler {
                    ActiveScheduler::Plain(s) => s.schedule(&problem)?,
                    ActiveScheduler::Ilp(s) => {
                        let (schedule, stats) = s.schedule_with_stats(&problem)?;
                        report.add_ilp_stats(&stats);
                        solved.ilp_stats = Some(stats);
                        schedule
                    }
                    ActiveScheduler::Resilient(rs) => {
                        let outcome = rs.schedule_with_outcome(&problem)?;
                        if let Some(stats) = outcome.ilp_stats.as_ref() {
                            report.add_ilp_stats(stats);
                            solved.ilp_stats = Some(*stats);
                        }
                        match outcome.solver {
                            SolverChoice::Ilp => {
                                report.ilp_horizons += 1;
                                solved.outcome = SolvedOutcome::IlpHorizon;
                            }
                            SolverChoice::Greedy => {
                                report.greedy_fallbacks += 1;
                                let deadline = matches!(
                                    outcome.fallback,
                                    Some(crate::schedule::FallbackReason::Deadline)
                                );
                                if deadline {
                                    report.deadline_fallbacks += 1;
                                }
                                solved.outcome = SolvedOutcome::GreedyFallback { deadline };
                            }
                        }
                        outcome.schedule
                    }
                };
                report.scheduler_time += sched_sw.elapsed();
                report.scheduler_calls += 1;

                // Mid-horizon follower failures: a fault-aware leader
                // running the resilient scheduler truncates the failed
                // follower's plan at the outage onset and re-plans the
                // dropped tasks onto the survivors.
                if fault_aware {
                    if let ActiveScheduler::Resilient(rs) = &scheduler {
                        if !repair_failures.is_empty() {
                            let repaired = rs.repair(&problem, &schedule, &repair_failures)?;
                            report.repairs_attempted += repair_failures.len();
                            report.tasks_dropped_by_failures += repaired.dropped_tasks;
                            report.tasks_reassigned += repaired.reassigned_tasks;
                            solved.repairs_attempted = repair_failures.len();
                            solved.dropped_tasks = repaired.dropped_tasks;
                            solved.reassigned_tasks = repaired.reassigned_tasks;
                            schedule = repaired.schedule;
                        }
                    }
                }
                if let Some((tr, d)) = digest {
                    solved.schedule = schedule.clone();
                    tr.solved_put(d, solved);
                }
            }

            // Execute captures: mark every target inside each
            // captured footprint (including undetected ones — the
            // serendipity effect behind Fig. 15).
            for (slot, seq) in schedule.sequences.iter().enumerate() {
                let k = active[slot];
                for cap in seq {
                    // A capture commanded to a follower that is out
                    // of service at capture time never happens.
                    if fault_plan
                        .map(|p| p.follower_out(k, cap.time_s))
                        .unwrap_or(false)
                    {
                        report.captures_lost_to_faults += 1;
                        continue;
                    }
                    let c = &clusters[cap.task];
                    let cx = c.center.cross_m;
                    let cy_abs = along_origin + c.center.along_m;
                    for &(idx, _, _) in &in_frame {
                        if captured[idx] {
                            continue;
                        }
                        // Re-evaluate the target position at capture
                        // time (moving targets may have drifted).
                        let p = self.targets.target(idx).position_at(cap.time_s);
                        let (x2, y2) = frame.project(&p);
                        let y2_abs = along_origin + y2;
                        if (x2 - cx).abs() <= high_swath / 2.0
                            && (y2_abs - cy_abs).abs() <= high_swath / 2.0
                        {
                            captured[idx] = true;
                        }
                    }
                    report.captures_commanded += 1;
                    avail[k] = cap.time_s;
                    pointing[k] = problem.capture_offset(slot, cap.task, cap.time_s);
                }
            }
        }
        Ok(())
    }
}

/// Deterministic detection roll in `[0, 1)` from (seed, target, frame).
fn detection_roll(seed: u64, target: u64, frame: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(target.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
        .wrapping_add(frame.wrapping_mul(0x1656_67b1_9e37_79f9));
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagleeye_datasets::{Target, TargetSet};
    use eagleeye_geo::GeodeticPoint;

    /// A compact workload of targets strung along the prime meridian —
    /// directly under the first orbit of a polar satellite with RAAN 0.
    fn meridian_targets(n: usize) -> TargetSet {
        (0..n)
            .map(|i| {
                let lat = -40.0 + 80.0 * i as f64 / n as f64;
                Target::fixed(
                    GeodeticPoint::from_degrees(lat, 0.35 * (i % 5) as f64, 0.0).unwrap(),
                    1.0,
                )
            })
            .collect()
    }

    fn quick_options() -> CoverageOptions {
        CoverageOptions {
            duration_s: 1_800.0,
            ..CoverageOptions::default()
        }
    }

    #[test]
    fn multithreaded_evaluation_is_deterministic() {
        // The full gauntlet: imperfect recall (stochastic detection),
        // an active fault plan, resilient scheduling, and several
        // leader groups — everything that could plausibly diverge under
        // parallel execution. The report must be identical (modulo
        // wall-clock timing) at every thread count.
        let targets = meridian_targets(80);
        let config = ConstellationConfig::EagleEye {
            groups: 3,
            followers_per_group: 2,
            scheduler: SchedulerKind::Resilient,
            clustering: ClusteringMethod::Ilp,
        };
        let plan = Arc::new(FaultPlan::new(11).with_fault(
            eagleeye_sim::FaultKind::FollowerOutage { follower: 1 },
            600.0,
            f64::INFINITY,
        ));
        let report_at = |threads: usize| {
            let mut opts = quick_options();
            opts.recall = 0.8;
            opts.fault_plan = Some(plan.clone());
            opts.degraded_mode = DegradedMode::Resilient;
            opts.threads = threads;
            CoverageEvaluator::new(&targets, opts)
                .evaluate(&config)
                .unwrap()
        };
        let sequential = report_at(1);
        assert!(sequential.captured > 0, "workload must exercise captures");
        for threads in [2, 4, 8] {
            let parallel = report_at(threads);
            assert!(
                sequential.same_outcome(&parallel),
                "threads={threads} diverged:\n  seq: {sequential:?}\n  par: {parallel:?}"
            );
        }
    }

    #[test]
    fn metrics_counters_are_deterministic_across_threads() {
        // Counters and histograms recorded under enabled metrics must
        // be bit-identical at every thread count, except the `exec/*`
        // keys, which describe the execution mechanism itself (pool
        // dispatches never happen in a sequential run). Gauges and
        // timers are exempt by contract (DESIGN.md §10).
        let targets = meridian_targets(80);
        let config = ConstellationConfig::EagleEye {
            groups: 3,
            followers_per_group: 2,
            scheduler: SchedulerKind::Resilient,
            clustering: ClusteringMethod::Ilp,
        };
        let plan = Arc::new(FaultPlan::new(11).with_fault(
            eagleeye_sim::FaultKind::FollowerOutage { follower: 1 },
            600.0,
            f64::INFINITY,
        ));
        let snapshot_at = |threads: usize| {
            let mut opts = quick_options();
            opts.recall = 0.8;
            opts.fault_plan = Some(plan.clone());
            opts.degraded_mode = DegradedMode::Resilient;
            opts.threads = threads;
            opts.metrics = Metrics::enabled();
            let metrics = opts.metrics.clone();
            CoverageEvaluator::new(&targets, opts)
                .evaluate(&config)
                .unwrap();
            metrics.snapshot()
        };
        let stable_counters = |snap: &eagleeye_obs::MetricsRegistry| {
            snap.counters()
                .filter(|(k, _)| !k.starts_with("exec/"))
                .map(|(k, v)| (k.to_string(), v))
                .collect::<Vec<_>>()
        };
        let seq = snapshot_at(1);
        assert!(seq.counter("core/frames_processed") > 0);
        assert!(seq.counter("core/evaluations") == 1);
        assert!(seq.counter("orbit/propagation_calls") > 0);
        assert!(seq.counter("orbit/trig_hits") > 0);
        assert!(seq.counter("ilp/nodes_explored") > 0);
        assert!(seq.counter("sim/fault_active_frames") > 0);
        assert!(seq.histogram("core/frame_targets").is_some());
        for threads in [2, 4] {
            let par = snapshot_at(threads);
            assert_eq!(
                stable_counters(&seq),
                stable_counters(&par),
                "threads={threads} diverged"
            );
            assert_eq!(
                seq.histograms()
                    .map(|(k, h)| (k.to_string(), h.clone()))
                    .collect::<Vec<_>>(),
                par.histograms()
                    .map(|(k, h)| (k.to_string(), h.clone()))
                    .collect::<Vec<_>>(),
                "threads={threads} histograms diverged"
            );
            assert!(par.counter("exec/par_maps") > 0);
        }
    }

    #[test]
    fn ilp_scheduler_reports_solver_diagnostics() {
        let targets = meridian_targets(60);
        let eval = CoverageEvaluator::new(&targets, quick_options());
        let r = eval.evaluate(&ConstellationConfig::eagleeye(1, 1)).unwrap();
        assert!(r.ilp_subproblems > 0, "the default scheduler is the ILP");
        assert!(r.ilp_nodes_explored >= r.ilp_subproblems);
        assert!(r.ilp_lp_pivots <= r.ilp_lp_iterations);
        assert!(r.ilp_incumbent_updates > 0);
    }

    #[test]
    fn swath_membership_is_deterministic_across_threads() {
        let targets = meridian_targets(50);
        let report_at = |threads: usize| {
            let mut opts = quick_options();
            opts.threads = threads;
            CoverageEvaluator::new(&targets, opts)
                .evaluate(&ConstellationConfig::LowResOnly { satellites: 5 })
                .unwrap()
        };
        let sequential = report_at(1);
        assert!(sequential.captured > 0);
        assert!(sequential.same_outcome(&report_at(4)));
    }

    fn temp_ckpt(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("eagleeye_core_harden_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn stable_counters(snap: &eagleeye_obs::MetricsRegistry) -> Vec<(String, u64)> {
        snap.counters()
            .filter(|(k, _)| !k.starts_with("exec/"))
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    }

    fn all_histograms(
        snap: &eagleeye_obs::MetricsRegistry,
    ) -> Vec<(String, eagleeye_obs::Histogram)> {
        snap.histograms()
            .map(|(k, h)| (k.to_string(), h.clone()))
            .collect()
    }

    #[test]
    fn hardened_evaluation_matches_plain_at_any_thread_count() {
        // With inert HardenOptions the crash-safe path must be
        // indistinguishable from the plain evaluator: identical report
        // (modulo wall-clock timers) and identical non-exec counters
        // and histograms, at 1 and 4 threads. Run the full gauntlet —
        // imperfect recall, an active fault plan, resilient scheduling.
        let targets = meridian_targets(80);
        let config = ConstellationConfig::EagleEye {
            groups: 3,
            followers_per_group: 2,
            scheduler: SchedulerKind::Resilient,
            clustering: ClusteringMethod::Ilp,
        };
        let plan = Arc::new(FaultPlan::new(11).with_fault(
            eagleeye_sim::FaultKind::FollowerOutage { follower: 1 },
            600.0,
            f64::INFINITY,
        ));
        let run = |threads: usize, hardened: bool| {
            let mut opts = quick_options();
            opts.recall = 0.8;
            opts.fault_plan = Some(plan.clone());
            opts.degraded_mode = DegradedMode::Resilient;
            opts.threads = threads;
            opts.metrics = Metrics::enabled();
            let metrics = opts.metrics.clone();
            let eval = CoverageEvaluator::new(&targets, opts);
            let report = if hardened {
                eval.evaluate_hardened(&config, &HardenOptions::new())
                    .unwrap()
                    .report
            } else {
                eval.evaluate(&config).unwrap()
            };
            (report, metrics.snapshot())
        };
        let (plain, plain_snap) = run(1, false);
        assert!(plain.captured > 0);
        assert!(!plain.degraded);
        assert_eq!(plain.leader_passes_completed, 3);
        assert_eq!(plain.leader_passes_total, 3);
        for threads in [1, 4] {
            let (hard, hard_snap) = run(threads, true);
            assert!(
                plain.same_outcome(&hard),
                "threads={threads} hardened diverged:\n  plain: {plain:?}\n  hard: {hard:?}"
            );
            assert_eq!(
                stable_counters(&plain_snap),
                stable_counters(&hard_snap),
                "threads={threads} counters diverged"
            );
            assert_eq!(
                all_histograms(&plain_snap),
                all_histograms(&hard_snap),
                "threads={threads} histograms diverged"
            );
            // Run-layer state is gauges only — completion 1.0, not
            // degraded.
            assert_eq!(hard_snap.gauge("harden/completion/leader_pass"), Some(1.0));
            assert_eq!(hard_snap.gauge("harden/degraded"), Some(0.0));
        }
    }

    #[test]
    fn expired_deadline_yields_valid_degraded_report() {
        let targets = meridian_targets(60);
        let config = ConstellationConfig::eagleeye(3, 1);
        let mut opts = quick_options();
        opts.metrics = Metrics::enabled();
        let metrics = opts.metrics.clone();
        let eval = CoverageEvaluator::new(&targets, opts);
        let harden = HardenOptions::new()
            .with_deadline(eagleeye_harden::Deadline::after(std::time::Duration::ZERO));
        let out = eval.evaluate_hardened(&config, &harden).unwrap();
        assert!(out.report.degraded);
        assert_eq!(
            out.degrade_reason,
            Some(eagleeye_harden::DegradeReason::Deadline)
        );
        assert_eq!(out.report.leader_passes_total, 3);
        assert!(out.report.leader_passes_completed < 3);
        assert!(out.report.completion_fraction() < 1.0);
        // The partial report is still internally consistent: workload
        // totals are set and captured never exceeds them.
        assert_eq!(out.report.total, 60);
        assert!(out.report.total_value > 0.0);
        assert!(out.report.captured <= out.report.total);
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge("harden/degraded"), Some(1.0));
        assert!(snap.gauge("harden/completion/leader_pass").unwrap() < 1.0);
    }

    #[test]
    fn checkpoint_resume_reproduces_uninterrupted_run() {
        // Interrupt a checkpointed evaluation via cooperative shutdown
        // as soon as the first checkpoint lands, then resume it; the
        // final report, counters, and histograms must be bit-identical
        // to a never-interrupted run.
        let targets = meridian_targets(80);
        let config = ConstellationConfig::eagleeye(4, 1);
        let make_opts = || {
            let mut opts = quick_options();
            opts.recall = 0.85;
            opts.metrics = Metrics::enabled();
            opts
        };
        let path = temp_ckpt("core_resume.ckpt");
        let _ = std::fs::remove_file(&path);

        // Segment 1: single worker, checkpoint after every pass, shut
        // down once the first checkpoint file appears.
        let opts = make_opts();
        let eval = CoverageEvaluator::new(&targets, opts);
        let shutdown = eagleeye_harden::ShutdownFlag::new();
        let watcher = {
            let shutdown = shutdown.clone();
            let path = path.clone();
            std::thread::spawn(move || {
                for _ in 0..2_000 {
                    if path.exists() {
                        shutdown.request();
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            })
        };
        let harden1 = HardenOptions {
            checkpoint: Some(eagleeye_harden::CheckpointSpec::new(&path, 1)),
            shutdown,
            ..HardenOptions::default()
        };
        let out1 = eval.evaluate_hardened(&config, &harden1).unwrap();
        watcher.join().unwrap();
        assert!(
            out1.report.leader_passes_completed >= 1,
            "cadence-1 checkpointing completes at least one pass"
        );

        // Segment 2: resume from the checkpoint and finish.
        let opts = make_opts();
        let metrics2 = opts.metrics.clone();
        let eval2 = CoverageEvaluator::new(&targets, opts);
        let harden2 =
            HardenOptions::new().with_checkpoint(eagleeye_harden::CheckpointSpec::new(&path, 1));
        let out2 = eval2.evaluate_hardened(&config, &harden2).unwrap();
        assert!(!out2.report.degraded);
        assert_eq!(out2.report.leader_passes_completed, 4);
        assert_eq!(
            out2.resumed_passes, out1.report.leader_passes_completed,
            "every pass from segment 1 must be restored, not recomputed"
        );

        // Uninterrupted reference run (no checkpoint involved at all).
        let opts = make_opts();
        let metrics_cold = opts.metrics.clone();
        let cold = CoverageEvaluator::new(&targets, opts)
            .evaluate_hardened(&config, &HardenOptions::new())
            .unwrap();
        assert!(
            cold.report.same_outcome(&out2.report),
            "resumed:\n  {:?}\ncold:\n  {:?}",
            out2.report,
            cold.report
        );
        assert_eq!(
            stable_counters(&metrics_cold.snapshot()),
            stable_counters(&metrics2.snapshot())
        );
        assert_eq!(
            all_histograms(&metrics_cold.snapshot()),
            all_histograms(&metrics2.snapshot())
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_a_different_scenario() {
        let targets = meridian_targets(30);
        let config = ConstellationConfig::eagleeye(2, 1);
        let path = temp_ckpt("core_mismatch.ckpt");
        let _ = std::fs::remove_file(&path);
        let spec = eagleeye_harden::CheckpointSpec::new(&path, 1);
        let opts = quick_options();
        CoverageEvaluator::new(&targets, opts)
            .evaluate_hardened(&config, &HardenOptions::new().with_checkpoint(spec.clone()))
            .unwrap();
        // Same checkpoint, different seed: the scenario hash differs
        // and the resume must be refused.
        let mut opts = quick_options();
        opts.seed = 8;
        let err = CoverageEvaluator::new(&targets, opts)
            .evaluate_hardened(&config, &HardenOptions::new().with_checkpoint(spec))
            .unwrap_err();
        assert!(
            matches!(&err, CoreError::Harden { message } if message.contains("scenario")),
            "unexpected error: {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hardened_swath_config_falls_back_to_plain() {
        let targets = meridian_targets(50);
        let opts = quick_options();
        let eval = CoverageEvaluator::new(&targets, opts);
        let config = ConstellationConfig::LowResOnly { satellites: 5 };
        let plain = eval.evaluate(&config).unwrap();
        let hard = eval
            .evaluate_hardened(&config, &HardenOptions::new())
            .unwrap();
        assert!(plain.same_outcome(&hard.report));
        assert_eq!(hard.report.leader_passes_total, 0);
        assert_eq!(hard.report.completion_fraction(), 1.0);
        assert!(hard.quarantined.is_empty());
    }

    #[test]
    fn scenario_hash_is_stable_and_sensitive() {
        let targets = meridian_targets(10);
        let config = ConstellationConfig::eagleeye(2, 1);
        let h =
            |opts: CoverageOptions| CoverageEvaluator::new(&targets, opts).scenario_hash(&config);
        let base = h(quick_options());
        assert_eq!(base, h(quick_options()), "hash must be deterministic");
        // Execution shape does not bind the scenario...
        let mut threaded = quick_options();
        threaded.threads = 8;
        threaded.metrics = Metrics::enabled();
        assert_eq!(base, h(threaded));
        // ...but the physics and workload do.
        let mut other_seed = quick_options();
        other_seed.seed = 8;
        assert_ne!(base, h(other_seed));
        let mut other_duration = quick_options();
        other_duration.duration_s += 1.0;
        assert_ne!(base, h(other_duration));
        // The solver tier binds the scenario: sparse solves are only
        // observationally equivalent, never a valid resume partner.
        let mut sparse = quick_options();
        sparse.ilp_tier = SolverTier::Sparse;
        assert_ne!(base, h(sparse));
        let other_config = ConstellationConfig::eagleeye(3, 1);
        assert_ne!(
            base,
            CoverageEvaluator::new(&targets, quick_options()).scenario_hash(&other_config)
        );
    }

    #[test]
    fn detection_roll_is_deterministic_and_uniformish() {
        let a = detection_roll(1, 2, 3);
        assert_eq!(a, detection_roll(1, 2, 3));
        let mean: f64 = (0..1000).map(|i| detection_roll(9, i, i * 7)).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zero_satellites_cover_nothing() {
        let targets = meridian_targets(10);
        let eval = CoverageEvaluator::new(&targets, quick_options());
        let r = eval
            .evaluate(&ConstellationConfig::LowResOnly { satellites: 0 })
            .unwrap();
        assert_eq!(r.captured, 0);
    }

    #[test]
    fn value_totals_are_wired_through() {
        let targets = meridian_targets(40);
        let eval = CoverageEvaluator::new(&targets, quick_options());
        let r = eval
            .evaluate(&ConstellationConfig::LowResOnly { satellites: 2 })
            .unwrap();
        // All meridian targets have value 1.0, so the two fractions agree.
        assert!((r.total_value - 40.0).abs() < 1e-9);
        assert!((r.value_fraction() - r.coverage_fraction()).abs() < 1e-9);
    }

    #[test]
    fn low_res_dominates_high_res() {
        let targets = meridian_targets(60);
        let eval = CoverageEvaluator::new(&targets, quick_options());
        let low = eval
            .evaluate(&ConstellationConfig::LowResOnly { satellites: 1 })
            .unwrap();
        let high = eval
            .evaluate(&ConstellationConfig::HighResOnly { satellites: 1 })
            .unwrap();
        assert!(low.captured >= high.captured);
        assert!(low.captured > 0, "the meridian pass must see targets");
    }

    #[test]
    fn eagleeye_beats_high_res_only() {
        let targets = meridian_targets(60);
        let eval = CoverageEvaluator::new(&targets, quick_options());
        let ee = eval.evaluate(&ConstellationConfig::eagleeye(1, 1)).unwrap();
        let high = eval
            .evaluate(&ConstellationConfig::HighResOnly { satellites: 2 })
            .unwrap();
        assert!(
            ee.captured >= high.captured,
            "eagleeye {} < high-res {}",
            ee.captured,
            high.captured
        );
        assert!(ee.captures_commanded > 0);
    }

    #[test]
    fn recall_zero_captures_nothing_with_eagleeye() {
        let targets = meridian_targets(30);
        let mut opts = quick_options();
        opts.recall = 0.0;
        let eval = CoverageEvaluator::new(&targets, opts);
        let r = eval.evaluate(&ConstellationConfig::eagleeye(1, 1)).unwrap();
        assert_eq!(r.captured, 0);
    }

    #[test]
    fn leader_failure_falls_back_to_nadir() {
        let targets = meridian_targets(60);
        let mut opts = quick_options();
        opts.failure = Some(FailurePlan {
            fail_at_s: 0.0,
            leader_failed: true,
            failed_followers: vec![],
        });
        let eval = CoverageEvaluator::new(&targets, opts);
        let r = eval.evaluate(&ConstellationConfig::eagleeye(1, 1)).unwrap();
        // Degraded mode still captures nadir targets but commands no
        // scheduled captures.
        assert_eq!(r.captures_commanded, 0);
    }

    #[test]
    fn all_followers_failed_captures_nothing() {
        let targets = meridian_targets(30);
        let mut opts = quick_options();
        opts.failure = Some(FailurePlan {
            fail_at_s: 0.0,
            leader_failed: false,
            failed_followers: vec![0],
        });
        let eval = CoverageEvaluator::new(&targets, opts);
        let r = eval.evaluate(&ConstellationConfig::eagleeye(1, 1)).unwrap();
        assert_eq!(r.captured, 0);
    }

    #[test]
    fn recapture_penalty_never_reduces_unique_coverage() {
        let targets = meridian_targets(60);
        let base = CoverageEvaluator::new(&targets, quick_options())
            .evaluate(&ConstellationConfig::eagleeye(1, 1))
            .unwrap();
        let mut opts = quick_options();
        opts.recapture_penalty = Some(0.1);
        let depri = CoverageEvaluator::new(&targets, opts)
            .evaluate(&ConstellationConfig::eagleeye(1, 1))
            .unwrap();
        assert!(
            depri.captured >= base.captured,
            "deprioritized {} < base {}",
            depri.captured,
            base.captured
        );
    }

    #[test]
    fn multiple_planes_are_accepted_and_change_geometry() {
        let targets = meridian_targets(60);
        let mut opts = quick_options();
        opts.orbital_planes = 3;
        let eval = CoverageEvaluator::new(&targets, opts);
        // With 3 planes only some leaders fly the meridian; the run must
        // still succeed and produce a valid report.
        let r = eval.evaluate(&ConstellationConfig::eagleeye(3, 1)).unwrap();
        assert!(r.frames_processed > 0);
        assert!(r.captured <= r.total);
    }

    #[test]
    fn fault_follower_outage_naive_loses_resilient_recovers() {
        let targets = meridian_targets(60);
        let plan = Arc::new(FaultPlan::new(1).with_fault(
            eagleeye_sim::FaultKind::FollowerOutage { follower: 0 },
            0.0,
            f64::INFINITY,
        ));

        let mut naive_opts = quick_options();
        naive_opts.fault_plan = Some(plan.clone());
        naive_opts.degraded_mode = DegradedMode::Naive;
        let naive = CoverageEvaluator::new(&targets, naive_opts)
            .evaluate(&ConstellationConfig::eagleeye(1, 2))
            .unwrap();
        assert!(
            naive.captures_lost_to_faults > 0,
            "naive leader should keep tasking the dead follower"
        );

        let mut res_opts = quick_options();
        res_opts.fault_plan = Some(plan);
        res_opts.degraded_mode = DegradedMode::Resilient;
        let resilient = CoverageEvaluator::new(&targets, res_opts)
            .evaluate(&ConstellationConfig::EagleEye {
                groups: 1,
                followers_per_group: 2,
                scheduler: SchedulerKind::Resilient,
                clustering: ClusteringMethod::Ilp,
            })
            .unwrap();
        // The dead-from-t0 follower is excluded up front, so nothing is
        // ever commanded to it.
        assert_eq!(resilient.captures_lost_to_faults, 0);
        assert!(
            resilient.captured >= naive.captured,
            "resilient {} < naive {}",
            resilient.captured,
            naive.captured
        );
    }

    #[test]
    fn resilient_scheduler_reports_horizon_provenance() {
        let targets = meridian_targets(40);
        let eval = CoverageEvaluator::new(&targets, quick_options());
        let r = eval
            .evaluate(&ConstellationConfig::EagleEye {
                groups: 1,
                followers_per_group: 1,
                scheduler: SchedulerKind::Resilient,
                clustering: ClusteringMethod::Ilp,
            })
            .unwrap();
        assert!(r.scheduler_calls > 0);
        assert_eq!(
            r.ilp_horizons + r.greedy_fallbacks,
            r.scheduler_calls,
            "every horizon must record its solver"
        );
    }

    #[test]
    fn mid_pass_outage_repair_counters_are_consistent() {
        let targets = meridian_targets(60);
        let mut opts = quick_options();
        opts.fault_plan = Some(Arc::new(FaultPlan::new(2).with_fault(
            eagleeye_sim::FaultKind::FollowerOutage { follower: 1 },
            300.0,
            f64::INFINITY,
        )));
        let eval = CoverageEvaluator::new(&targets, opts);
        let r = eval
            .evaluate(&ConstellationConfig::EagleEye {
                groups: 1,
                followers_per_group: 2,
                scheduler: SchedulerKind::Resilient,
                clustering: ClusteringMethod::Ilp,
            })
            .unwrap();
        assert!(r.tasks_reassigned <= r.tasks_dropped_by_failures);
        assert!(r.captured > 0, "survivor must keep capturing");
    }

    #[test]
    fn fault_leader_outage_suppresses_scheduling() {
        let targets = meridian_targets(30);
        let mut opts = quick_options();
        opts.fault_plan = Some(Arc::new(FaultPlan::new(3).with_fault(
            eagleeye_sim::FaultKind::LeaderOutage,
            0.0,
            f64::INFINITY,
        )));
        let eval = CoverageEvaluator::new(&targets, opts);
        let r = eval.evaluate(&ConstellationConfig::eagleeye(1, 1)).unwrap();
        assert_eq!(r.captures_commanded, 0);
        assert!(r.frames_leader_down > 0);
    }

    #[test]
    fn fault_total_detector_dropout_captures_nothing() {
        let targets = meridian_targets(30);
        let mut opts = quick_options();
        opts.fault_plan = Some(Arc::new(FaultPlan::new(4).with_fault(
            eagleeye_sim::FaultKind::DetectorDropout {
                false_negative_rate: 1.0,
            },
            0.0,
            f64::INFINITY,
        )));
        let eval = CoverageEvaluator::new(&targets, opts);
        let r = eval.evaluate(&ConstellationConfig::eagleeye(1, 1)).unwrap();
        assert_eq!(r.captured, 0);
    }

    #[test]
    fn fault_brownout_suppresses_captures_inside_window() {
        let targets = meridian_targets(30);
        let mut opts = quick_options();
        opts.fault_plan = Some(Arc::new(FaultPlan::new(5).with_fault(
            eagleeye_sim::FaultKind::BatteryBrownout,
            0.0,
            f64::INFINITY,
        )));
        let eval = CoverageEvaluator::new(&targets, opts);
        let r = eval.evaluate(&ConstellationConfig::eagleeye(1, 1)).unwrap();
        assert_eq!(r.captures_commanded, 0);
    }

    #[test]
    fn fault_slew_derate_never_panics_and_bounds_coverage() {
        let targets = meridian_targets(40);
        let base = CoverageEvaluator::new(&targets, quick_options())
            .evaluate(&ConstellationConfig::eagleeye(1, 1))
            .unwrap();
        let mut opts = quick_options();
        opts.fault_plan = Some(Arc::new(FaultPlan::new(6).with_fault(
            eagleeye_sim::FaultKind::SlewDerate { rate_factor: 0.25 },
            0.0,
            f64::INFINITY,
        )));
        let derated = CoverageEvaluator::new(&targets, opts)
            .evaluate(&ConstellationConfig::eagleeye(1, 1))
            .unwrap();
        assert!(
            derated.captured <= base.captured,
            "slower wheels cannot capture more ({} > {})",
            derated.captured,
            base.captured
        );
    }

    #[test]
    fn mix_camera_with_huge_compute_time_captures_nothing() {
        let targets = meridian_targets(30);
        let eval = CoverageEvaluator::new(&targets, quick_options());
        let r = eval
            .evaluate(&ConstellationConfig::MixCamera {
                satellites: 1,
                compute_time_s: 14.9,
            })
            .unwrap();
        assert_eq!(r.captured, 0);
    }
}
