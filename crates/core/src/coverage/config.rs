use crate::clustering::ClusteringMethod;

/// Which scheduling algorithm the leaders run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// The paper's ILP formulation (default).
    Ilp,
    /// Greedy nearest-target baseline.
    Greedy,
    /// Prior-work anytime branch-and-bound (slow; for runtime studies).
    Abb,
    /// Budgeted ILP with greedy fallback, post-validation, and mid-pass
    /// failure repair (see [`crate::schedule::ResilientScheduler`]).
    Resilient,
}

/// How the constellation reacts to faults injected via
/// [`CoverageOptions::fault_plan`](super::CoverageOptions::fault_plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DegradedMode {
    /// The leader is unaware of follower outages: it keeps assigning
    /// tasks to dead followers, whose captures are silently lost. The
    /// pessimistic baseline for fault-tolerance studies.
    Naive,
    /// The leader excludes known-out followers from scheduling and —
    /// with [`SchedulerKind::Resilient`] — re-plans tasks dropped by
    /// mid-pass failures onto the survivors.
    #[default]
    Resilient,
}

/// A constellation organization to evaluate (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstellationConfig {
    /// Homogeneous wide-swath (100 km, 30 m GSD) constellation.
    /// Coverage counts swath membership; the data is low-resolution.
    LowResOnly {
        /// Number of satellites, evenly spaced in one plane.
        satellites: usize,
    },
    /// Homogeneous narrow-swath (10 km, 3 m GSD) nadir constellation.
    HighResOnly {
        /// Number of satellites, evenly spaced in one plane.
        satellites: usize,
    },
    /// The EagleEye leader-follower organization.
    EagleEye {
        /// Number of leader-follower groups, evenly spaced in one plane.
        groups: usize,
        /// Followers trailing each leader.
        followers_per_group: usize,
        /// Scheduling algorithm.
        scheduler: SchedulerKind,
        /// Target clustering mode.
        clustering: ClusteringMethod,
    },
    /// Both cameras on every satellite; compute time shrinks each
    /// frame's usable capture window (paper §4.4, Fig. 9/13).
    MixCamera {
        /// Number of satellites, evenly spaced in one plane.
        satellites: usize,
        /// Onboard detection + scheduling latency per frame, seconds.
        compute_time_s: f64,
    },
}

impl ConstellationConfig {
    /// A default EagleEye configuration: ILP scheduling, ILP clustering.
    pub fn eagleeye(groups: usize, followers_per_group: usize) -> Self {
        ConstellationConfig::EagleEye {
            groups,
            followers_per_group,
            scheduler: SchedulerKind::Ilp,
            clustering: ClusteringMethod::Ilp,
        }
    }

    /// Total satellite count of the configuration (the x-axis of the
    /// paper's Fig. 11).
    pub fn total_satellites(&self) -> usize {
        match *self {
            ConstellationConfig::LowResOnly { satellites }
            | ConstellationConfig::HighResOnly { satellites }
            | ConstellationConfig::MixCamera { satellites, .. } => satellites,
            ConstellationConfig::EagleEye {
                groups,
                followers_per_group,
                ..
            } => groups * (1 + followers_per_group),
        }
    }

    /// Short label for experiment output.
    pub fn label(&self) -> String {
        match *self {
            ConstellationConfig::LowResOnly { satellites } => {
                format!("low-res-only({satellites})")
            }
            ConstellationConfig::HighResOnly { satellites } => {
                format!("high-res-only({satellites})")
            }
            ConstellationConfig::EagleEye {
                groups,
                followers_per_group,
                scheduler,
                ..
            } => {
                format!(
                    "eagleeye({groups}x{}, {})",
                    followers_per_group,
                    match scheduler {
                        SchedulerKind::Ilp => "ilp",
                        SchedulerKind::Greedy => "greedy",
                        SchedulerKind::Abb => "abb",
                        SchedulerKind::Resilient => "resilient",
                    }
                )
            }
            ConstellationConfig::MixCamera {
                satellites,
                compute_time_s,
            } => {
                format!("mix-camera({satellites}, {compute_time_s}s)")
            }
        }
    }
}

/// A reliability scenario (paper §4.7): failures occurring at a given
/// simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct FailurePlan {
    /// Simulation time at which the failures occur, seconds.
    pub fail_at_s: f64,
    /// Whether the group leader fails. Followers then fall back to
    /// capturing nadir high-resolution imagery.
    pub leader_failed: bool,
    /// Indices of failed followers (excluded from scheduling).
    pub failed_followers: Vec<usize>,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Option<FailurePlan> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_satellites_counts_groups() {
        assert_eq!(ConstellationConfig::eagleeye(2, 1).total_satellites(), 4);
        assert_eq!(ConstellationConfig::eagleeye(1, 3).total_satellites(), 4);
        assert_eq!(
            ConstellationConfig::LowResOnly { satellites: 7 }.total_satellites(),
            7
        );
        assert_eq!(
            ConstellationConfig::MixCamera {
                satellites: 3,
                compute_time_s: 1.4
            }
            .total_satellites(),
            3
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            ConstellationConfig::LowResOnly { satellites: 4 }.label(),
            ConstellationConfig::HighResOnly { satellites: 4 }.label(),
            ConstellationConfig::eagleeye(2, 1).label(),
            ConstellationConfig::MixCamera {
                satellites: 4,
                compute_time_s: 1.4,
            }
            .label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), 4);
    }
}
