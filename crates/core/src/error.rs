use std::error::Error;
use std::fmt;

/// Errors produced by the EagleEye core library.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// A schedule violated one of the paper's constraints C1–C3 or basic
    /// sanity (ordering, windows, duplicates).
    ScheduleViolation {
        /// Human-readable description of the violated constraint.
        description: String,
    },
    /// The underlying ILP solver failed.
    Solver(eagleeye_ilp::IlpError),
    /// Orbit propagation or constellation layout failed.
    Orbit(eagleeye_orbit::OrbitError),
    /// Geodetic computation failed.
    Geo(eagleeye_geo::GeoError),
    /// The crash-safe run layer failed: a checkpoint could not be
    /// written or validated, or a stored partial result replayed an
    /// error from a previous segment.
    Harden {
        /// Human-readable description of the failure.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, value } => {
                write!(f, "parameter {name} = {value} is out of range")
            }
            CoreError::ScheduleViolation { description } => {
                write!(f, "schedule constraint violated: {description}")
            }
            CoreError::Solver(e) => write!(f, "ILP solver failed: {e}"),
            CoreError::Orbit(e) => write!(f, "orbit model failed: {e}"),
            CoreError::Geo(e) => write!(f, "geometry failed: {e}"),
            CoreError::Harden { message } => {
                write!(f, "crash-safe run layer failed: {message}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Solver(e) => Some(e),
            CoreError::Orbit(e) => Some(e),
            CoreError::Geo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<eagleeye_ilp::IlpError> for CoreError {
    fn from(e: eagleeye_ilp::IlpError) -> Self {
        CoreError::Solver(e)
    }
}

impl From<eagleeye_orbit::OrbitError> for CoreError {
    fn from(e: eagleeye_orbit::OrbitError) -> Self {
        CoreError::Orbit(e)
    }
}

impl From<eagleeye_geo::GeoError> for CoreError {
    fn from(e: eagleeye_geo::GeoError) -> Self {
        CoreError::Geo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs: Vec<CoreError> = vec![
            CoreError::InvalidParameter {
                name: "x",
                value: 1.0,
            },
            CoreError::ScheduleViolation {
                description: "C1".into(),
            },
            CoreError::Solver(eagleeye_ilp::IlpError::Unbounded),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
