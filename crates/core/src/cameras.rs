use crate::CoreError;

/// An imaging payload characterized by its swath width and ground sample
/// distance — the fundamental trade-off at the heart of the paper
/// (Fig. 2 and Fig. 4 left): with a fixed sensor pixel count, a wider
/// swath means coarser pixels.
///
/// # Example
///
/// ```
/// use eagleeye_core::Camera;
///
/// let low = Camera::paper_low_res();
/// let high = Camera::paper_high_res();
/// assert_eq!(low.swath_m(), 100_000.0);
/// assert_eq!(high.gsd_m(), 3.0);
/// // Both cameras have ~the same pixel count; the swath/GSD ratio shows it.
/// assert!((low.pixels_across() - high.pixels_across()).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    swath_m: f64,
    gsd_m: f64,
}

impl Camera {
    /// Creates a camera.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when either dimension is
    /// not strictly positive and finite.
    pub fn new(swath_m: f64, gsd_m: f64) -> Result<Self, CoreError> {
        if !(swath_m > 0.0) || !swath_m.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "swath_m",
                value: swath_m,
            });
        }
        if !(gsd_m > 0.0) || !gsd_m.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "gsd_m",
                value: gsd_m,
            });
        }
        Ok(Camera { swath_m, gsd_m })
    }

    /// The paper's leader camera: 100 km swath at 30 m GSD (§5.3).
    pub fn paper_low_res() -> Self {
        Camera {
            swath_m: 100_000.0,
            gsd_m: 30.0,
        }
    }

    /// The paper's follower camera: 10 km swath at 3 m GSD (§5.3).
    pub fn paper_high_res() -> Self {
        Camera {
            swath_m: 10_000.0,
            gsd_m: 3.0,
        }
    }

    /// Swath width in meters.
    #[inline]
    pub fn swath_m(&self) -> f64 {
        self.swath_m
    }

    /// Ground sample distance in meters per pixel.
    #[inline]
    pub fn gsd_m(&self) -> f64 {
        self.gsd_m
    }

    /// Sensor pixels across the swath.
    #[inline]
    pub fn pixels_across(&self) -> f64 {
        self.swath_m / self.gsd_m
    }
}

/// Real cubesat cameras for the Fig. 4 (left) swath-vs-GSD scatter:
/// `(name, swath_km, gsd_m)`. Values are approximate public
/// specifications of the Planet, Dragonfly, and Simera Sense product
/// lines the paper cites.
pub const REAL_CUBESAT_CAMERAS: &[(&str, f64, f64)] = &[
    ("Planet Dove PS2", 24.6, 3.7),
    ("Planet SuperDove PSB.SD", 32.5, 3.7),
    ("Planet SkySat", 5.9, 0.72),
    ("Dragonfly Gecko", 60.0, 39.0),
    ("Dragonfly Chameleon", 25.0, 4.8),
    ("Simera MultiScape100", 19.4, 4.75),
    ("Simera MultiScape200", 9.7, 2.4),
    ("Simera TriScape100", 19.4, 4.75),
    ("Simera TriScape200", 9.7, 2.4),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_cameras() {
        assert!(Camera::new(0.0, 3.0).is_err());
        assert!(Camera::new(1.0, -1.0).is_err());
        assert!(Camera::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn paper_cameras_have_ten_x_ratio() {
        let low = Camera::paper_low_res();
        let high = Camera::paper_high_res();
        assert!((low.swath_m() / high.swath_m() - 10.0).abs() < 1e-9);
        assert!((low.gsd_m() / high.gsd_m() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn real_cameras_show_the_tradeoff() {
        // Wider swath correlates with coarser GSD across the table:
        // check the extremes rather than strict monotonicity.
        let widest = REAL_CUBESAT_CAMERAS
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let sharpest = REAL_CUBESAT_CAMERAS
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
            .unwrap();
        assert!(widest.2 > sharpest.2 * 10.0);
        assert!(widest.1 > sharpest.1 * 5.0);
    }

    #[test]
    fn table_has_nine_cameras_like_fig4() {
        assert_eq!(REAL_CUBESAT_CAMERAS.len(), 9);
    }
}
