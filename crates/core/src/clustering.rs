//! Target clustering: cover detected targets with as few high-resolution
//! image footprints as possible (paper §4.1, Fig. 7).
//!
//! The problem is a planar point cover: given target center points and a
//! fixed `w × h` axis-aligned footprint, find a minimum set of footprint
//! placements covering all points. As in the paper, footprints are
//! axis-parallel to the frame (off-parallel captures are future work),
//! and there is an optimal solution in which every box has its left edge
//! on some point's x-coordinate and its bottom edge on some point's
//! y-coordinate — so the candidate set is finite and the problem becomes
//! minimum set cover, solved exactly with the ILP solver
//! (`eagleeye-ilp`) or approximately with the classic greedy heuristic.
//!
//! A cluster's value is the sum of its members' priority scores; the
//! scheduler then treats each cluster as a single capture task.
//!
//! # Example
//!
//! ```
//! use eagleeye_core::clustering::{cluster, ClusteringMethod};
//! use eagleeye_core::pointing::GroundPoint;
//!
//! // Three targets within one 10 km box, one far away: 2 captures.
//! let pts = vec![
//!     (GroundPoint::new(0.0, 0.0), 1.0),
//!     (GroundPoint::new(3_000.0, 2_000.0), 1.0),
//!     (GroundPoint::new(-2_000.0, 4_000.0), 1.0),
//!     (GroundPoint::new(80_000.0, 0.0), 1.0),
//! ];
//! let clusters = cluster(&pts, 10_000.0, 10_000.0, ClusteringMethod::Ilp)?;
//! assert_eq!(clusters.len(), 2);
//! # Ok::<(), eagleeye_core::CoreError>(())
//! ```

use crate::pointing::GroundPoint;
use crate::CoreError;
use eagleeye_ilp::{Model, Sense, SolveOptions};
use std::collections::BTreeSet;
use std::time::Duration;

/// How to cluster targets into capture footprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusteringMethod {
    /// Exact minimum rectangle cover via ILP (the paper's approach).
    Ilp,
    /// Greedy maximum-coverage heuristic.
    Greedy,
    /// No clustering: one capture per target (the Fig. 14c ablation
    /// baseline).
    None,
}

/// A set of targets covered by one high-resolution capture.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Footprint center in frame coordinates.
    pub center: GroundPoint,
    /// Indices into the input point list.
    pub members: Vec<usize>,
    /// Sum of member priority values (the cluster's scheduling value,
    /// paper §4.1).
    pub value: f64,
}

/// A candidate footprint placement and the points it covers.
#[derive(Debug, Clone)]
struct Candidate {
    covered: Vec<usize>,
}

/// Clusters `points` (each `(position, value)`) with a `box_w × box_h`
/// footprint.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for non-positive box dimensions.
/// * [`CoreError::Solver`] if the ILP solver fails internally (the ILP
///   method falls back to greedy on time-limit instead of erroring).
pub fn cluster(
    points: &[(GroundPoint, f64)],
    box_w_m: f64,
    box_h_m: f64,
    method: ClusteringMethod,
) -> Result<Vec<Cluster>, CoreError> {
    if !(box_w_m > 0.0) || !box_w_m.is_finite() {
        return Err(CoreError::InvalidParameter {
            name: "box_w_m",
            value: box_w_m,
        });
    }
    if !(box_h_m > 0.0) || !box_h_m.is_finite() {
        return Err(CoreError::InvalidParameter {
            name: "box_h_m",
            value: box_h_m,
        });
    }
    if points.is_empty() {
        return Ok(Vec::new());
    }
    match method {
        ClusteringMethod::None => Ok(points
            .iter()
            .enumerate()
            .map(|(i, (p, v))| Cluster {
                center: *p,
                members: vec![i],
                value: *v,
            })
            .collect()),
        ClusteringMethod::Greedy => {
            let candidates = candidates(points, box_w_m, box_h_m);
            Ok(assemble(
                points,
                box_w_m,
                box_h_m,
                greedy_cover(points.len(), &candidates),
            ))
        }
        ClusteringMethod::Ilp => {
            let candidates = candidates(points, box_w_m, box_h_m);
            // Resource exhaustion inside the solver (iteration cap on a
            // degenerate instance, deadline) degrades to the greedy
            // heuristic rather than failing the frame.
            let chosen = match ilp_cover(points.len(), &candidates) {
                Ok(Some(chosen)) => chosen,
                Ok(None)
                | Err(CoreError::Solver(
                    eagleeye_ilp::IlpError::IterationLimit { .. }
                    | eagleeye_ilp::IlpError::Deadline,
                )) => greedy_cover(points.len(), &candidates),
                Err(e) => return Err(e),
            };
            Ok(assemble(points, box_w_m, box_h_m, chosen))
        }
    }
}

/// Generates canonical candidate placements: boxes whose left edge is at
/// some point's x and bottom edge at some point's y, deduplicated by
/// covered set.
fn candidates(points: &[(GroundPoint, f64)], w: f64, h: f64) -> Vec<Candidate> {
    let n = points.len();
    // Sort point indices by x for cheap range filtering.
    let mut by_x: Vec<usize> = (0..n).collect();
    by_x.sort_by(|&a, &b| points[a].0.cross_m.total_cmp(&points[b].0.cross_m));

    let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut out = Vec::new();
    for (rank, &i) in by_x.iter().enumerate() {
        let min_x = points[i].0.cross_m;
        // Points within the x-range of a box anchored at min_x.
        let mut in_x = Vec::new();
        for &j in &by_x[rank..] {
            if points[j].0.cross_m > min_x + w {
                break;
            }
            in_x.push(j);
        }
        // Anchor the bottom edge at each member's y. For a fixed x-anchor
        // the covered sets are y-sorted intervals; an interval anchored
        // lower that reaches the same top covers a superset, so keep only
        // the first (lowest) anchor per distinct top — the maximal
        // windows. This prunes dominated candidates without losing any
        // optimal cover.
        let mut by_y = in_x.clone();
        by_y.sort_by(|&a, &b| points[a].0.along_m.total_cmp(&points[b].0.along_m));
        let mut last_hi = usize::MAX;
        for (lo, &j) in by_y.iter().enumerate() {
            let min_y = points[j].0.along_m;
            let mut hi = lo;
            while hi + 1 < by_y.len() && points[by_y[hi + 1]].0.along_m <= min_y + h {
                hi += 1;
            }
            if hi == last_hi {
                continue; // dominated by the previous (lower) anchor
            }
            last_hi = hi;
            let mut covered: Vec<usize> = by_y[lo..=hi].to_vec();
            covered.sort_unstable();
            if seen.insert(covered.clone()) {
                out.push(Candidate { covered });
            }
        }
    }
    out
}

/// Greedy set cover: repeatedly take the candidate covering the most
/// uncovered points.
fn greedy_cover(n_points: usize, candidates: &[Candidate]) -> Vec<usize> {
    let mut uncovered: BTreeSet<usize> = (0..n_points).collect();
    let mut chosen = Vec::new();
    while !uncovered.is_empty() {
        let best = candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.covered.iter().filter(|p| uncovered.contains(p)).count());
        let Some((idx, cand)) = best else { break };
        let gain = cand
            .covered
            .iter()
            .filter(|p| uncovered.contains(p))
            .count();
        if gain == 0 {
            break; // canonical candidates always cover their anchors; defensive
        }
        for p in &cand.covered {
            uncovered.remove(p);
        }
        chosen.push(idx);
    }
    chosen
}

/// Exact minimum cover via ILP. Returns `None` when the solver hit its
/// time limit without proving optimality (caller falls back to greedy).
fn ilp_cover(n_points: usize, candidates: &[Candidate]) -> Result<Option<Vec<usize>>, CoreError> {
    let mut model = Model::minimize();
    let vars: Vec<_> = candidates
        .iter()
        .map(|_| model.add_binary_var(1.0))
        .collect();
    // point -> candidates covering it
    let mut covering: Vec<Vec<usize>> = vec![Vec::new(); n_points];
    for (ci, c) in candidates.iter().enumerate() {
        for &p in &c.covered {
            covering[p].push(ci);
        }
    }
    for cover in &covering {
        if cover.is_empty() {
            // A point no candidate covers cannot happen (its own anchor
            // covers it), but guard against future candidate pruning.
            return Ok(None);
        }
        model.add_constraint(cover.iter().map(|&ci| (vars[ci], 1.0)), Sense::Ge, 1.0)?;
    }
    let options = SolveOptions::with_time_limit(Duration::from_secs(3));
    let sol = model.solve(&options)?;
    if !sol.is_usable() {
        return Ok(None);
    }
    Ok(Some(
        (0..candidates.len())
            .filter(|&ci| sol.value(vars[ci]) > 0.5)
            .collect(),
    ))
}

/// Builds [`Cluster`]s from chosen candidates, assigning each point to
/// the first chosen box that covers it and centering each box on its
/// members' bounding box (any center keeping members inside is valid).
fn assemble(points: &[(GroundPoint, f64)], w: f64, h: f64, chosen: Vec<usize>) -> Vec<Cluster> {
    // Re-derive coverage from geometry to stay independent of candidate
    // bookkeeping.
    let mut assigned = vec![false; points.len()];
    let mut clusters = Vec::new();
    // chosen indexes into the candidate list; rebuild candidate geometry
    // lazily by recomputing coverage.
    let candidates = candidates(points, w, h);
    for ci in chosen {
        let c = &candidates[ci];
        let members: Vec<usize> = c
            .covered
            .iter()
            .copied()
            .filter(|&p| !assigned[p])
            .collect();
        if members.is_empty() {
            continue;
        }
        for &m in &members {
            assigned[m] = true;
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut value = 0.0;
        for &m in &members {
            let p = points[m].0;
            x0 = x0.min(p.cross_m);
            x1 = x1.max(p.cross_m);
            y0 = y0.min(p.along_m);
            y1 = y1.max(p.along_m);
            value += points[m].1;
        }
        clusters.push(Cluster {
            center: GroundPoint::new((x0 + x1) / 2.0, (y0 + y1) / 2.0),
            members,
            value,
        });
    }
    clusters
}

/// True when every member of every cluster lies within the `w × h`
/// footprint centered at the cluster center (the coverage invariant the
/// property tests check).
pub fn covers_all(points: &[(GroundPoint, f64)], clusters: &[Cluster], w: f64, h: f64) -> bool {
    let mut covered = vec![false; points.len()];
    for c in clusters {
        for &m in &c.members {
            let p = points[m].0;
            if (p.cross_m - c.center.cross_m).abs() > w / 2.0 + 1e-6
                || (p.along_m - c.center.along_m).abs() > h / 2.0 + 1e-6
            {
                return false;
            }
            covered[m] = true;
        }
    }
    covered.into_iter().all(|c| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<(GroundPoint, f64)> {
        coords
            .iter()
            .map(|&(x, y)| (GroundPoint::new(x, y), 1.0))
            .collect()
    }

    #[test]
    fn rejects_degenerate_boxes() {
        assert!(cluster(&pts(&[(0.0, 0.0)]), 0.0, 10.0, ClusteringMethod::Ilp).is_err());
        assert!(cluster(&pts(&[(0.0, 0.0)]), 10.0, -1.0, ClusteringMethod::Greedy).is_err());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(cluster(&[], 10.0, 10.0, ClusteringMethod::Ilp)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn none_method_makes_singletons() {
        let p = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let c = cluster(&p, 10.0, 10.0, ClusteringMethod::None).unwrap();
        assert_eq!(c.len(), 3);
        for (i, cl) in c.iter().enumerate() {
            assert_eq!(cl.members, vec![i]);
        }
    }

    #[test]
    fn close_points_merge_into_one_box() {
        let p = pts(&[(0.0, 0.0), (3_000.0, 2_000.0), (-2_000.0, 4_000.0)]);
        for m in [ClusteringMethod::Ilp, ClusteringMethod::Greedy] {
            let c = cluster(&p, 10_000.0, 10_000.0, m).unwrap();
            assert_eq!(c.len(), 1, "{m:?}");
            assert_eq!(c[0].value, 3.0);
            assert!(covers_all(&p, &c, 10_000.0, 10_000.0));
        }
    }

    #[test]
    fn far_points_stay_separate() {
        let p = pts(&[(0.0, 0.0), (50_000.0, 0.0), (0.0, 50_000.0)]);
        let c = cluster(&p, 10_000.0, 10_000.0, ClusteringMethod::Ilp).unwrap();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn ilp_beats_or_ties_greedy() {
        // A chain where greedy can be suboptimal but ILP is exact.
        let p = pts(&[(0.0, 0.0), (6_000.0, 0.0), (12_000.0, 0.0), (18_000.0, 0.0)]);
        let ilp = cluster(&p, 10_000.0, 10_000.0, ClusteringMethod::Ilp).unwrap();
        let greedy = cluster(&p, 10_000.0, 10_000.0, ClusteringMethod::Greedy).unwrap();
        assert!(ilp.len() <= greedy.len());
        assert_eq!(ilp.len(), 2); // [0,6],[12,18]
    }

    #[test]
    fn cluster_value_is_member_sum() {
        let p = vec![
            (GroundPoint::new(0.0, 0.0), 0.7),
            (GroundPoint::new(1_000.0, 1_000.0), 0.9),
        ];
        let c = cluster(&p, 10_000.0, 10_000.0, ClusteringMethod::Ilp).unwrap();
        assert_eq!(c.len(), 1);
        assert!((c[0].value - 1.6).abs() < 1e-12);
    }

    #[test]
    fn every_point_is_assigned_exactly_once() {
        let coords: Vec<(f64, f64)> = (0..40)
            .map(|i| ((i % 8) as f64 * 4_000.0, (i / 8) as f64 * 4_500.0))
            .collect();
        let p = pts(&coords);
        for m in [ClusteringMethod::Ilp, ClusteringMethod::Greedy] {
            let c = cluster(&p, 10_000.0, 10_000.0, m).unwrap();
            let mut count = vec![0usize; p.len()];
            for cl in &c {
                for &mem in &cl.members {
                    count[mem] += 1;
                }
            }
            assert!(count.iter().all(|&k| k == 1), "{m:?}: {count:?}");
            assert!(covers_all(&p, &c, 10_000.0, 10_000.0));
        }
    }

    #[test]
    fn paper_scale_five_hundred_targets_clusters_quickly() {
        // §4.1: optimal rectangle cover for 500 targets. Spread over a
        // 100 km frame with realistic density.
        let coords: Vec<(f64, f64)> = (0..500)
            .map(|i| {
                let x = ((i * 2_654_435_761_usize) % 100_000) as f64 - 50_000.0;
                let y = ((i * 40_503_usize) % 110_000) as f64;
                (x, y)
            })
            .collect();
        let p = pts(&coords);
        // Timing goes through an obs timer: `core` contains no direct
        // wall-clock reads (lint rule `clock`).
        let m = eagleeye_obs::Metrics::enabled();
        let c = m
            .time("core/test/cluster_500", || {
                cluster(&p, 10_000.0, 10_000.0, ClusteringMethod::Ilp)
            })
            .unwrap();
        let elapsed = m
            .snapshot()
            .timer("core/test/cluster_500")
            .expect("timer recorded")
            .total;
        assert!(covers_all(&p, &c, 10_000.0, 10_000.0));
        assert!(c.len() < 200, "clusters {}", c.len());
        assert!(elapsed.as_secs() < 30, "took {elapsed:?}");
    }
}
