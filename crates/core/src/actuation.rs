use crate::CoreError;

/// Attitude determination and control model: a slew-rate-limited actuator
/// with a fixed per-maneuver acceleration/deceleration overhead.
///
/// The paper models pointing as `MaxAng(t) = rate · (t − overhead)`
/// (§5.3: 3 deg/s with 0.67 s overhead from 9 deg/s² accel/decel; a
/// high-end 10 deg/s wheel is also evaluated in Fig. 11b).
///
/// # Example
///
/// ```
/// use eagleeye_core::Adacs;
///
/// let adacs = Adacs::paper_default();
/// // 3 deg/s with 0.67 s overhead: a 6-degree rotation needs ~2.67 s.
/// let t = adacs.min_slew_time_s(6.0_f64.to_radians());
/// assert!((t - 2.67).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adacs {
    rate_rad_s: f64,
    overhead_s: f64,
}

impl Adacs {
    /// Creates an ADACS model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a non-positive rate or
    /// negative overhead.
    pub fn new(rate_deg_s: f64, overhead_s: f64) -> Result<Self, CoreError> {
        if !(rate_deg_s > 0.0) || !rate_deg_s.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "rate_deg_s",
                value: rate_deg_s,
            });
        }
        if !(overhead_s >= 0.0) || !overhead_s.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "overhead_s",
                value: overhead_s,
            });
        }
        Ok(Adacs {
            rate_rad_s: rate_deg_s.to_radians(),
            overhead_s,
        })
    }

    /// The paper's default: 3 deg/s with 0.67 s maneuver overhead.
    pub fn paper_default() -> Self {
        Adacs {
            rate_rad_s: 3.0_f64.to_radians(),
            overhead_s: 0.67,
        }
    }

    /// The paper's high-end reaction wheel: 10 deg/s.
    pub fn high_end() -> Self {
        Adacs {
            rate_rad_s: 10.0_f64.to_radians(),
            overhead_s: 0.67,
        }
    }

    /// Slew rate in radians per second.
    #[inline]
    pub fn rate_rad_s(&self) -> f64 {
        self.rate_rad_s
    }

    /// Per-maneuver overhead in seconds.
    #[inline]
    pub fn overhead_s(&self) -> f64 {
        self.overhead_s
    }

    /// Maximum rotation achievable in `dt_s` seconds (paper's
    /// `MaxAng(t)`), radians. Zero for intervals shorter than the
    /// overhead.
    #[inline]
    pub fn max_angle_rad(&self, dt_s: f64) -> f64 {
        (self.rate_rad_s * (dt_s - self.overhead_s)).max(0.0)
    }

    /// Minimum time to rotate by `angle_rad`, seconds. A zero-angle
    /// "rotation" is free (the satellite is already pointed).
    #[inline]
    pub fn min_slew_time_s(&self, angle_rad: f64) -> f64 {
        if angle_rad <= 1e-12 {
            0.0
        } else {
            angle_rad / self.rate_rad_s + self.overhead_s
        }
    }

    /// True when rotating by `angle_rad` within `dt_s` is feasible
    /// (constraint C1 of the paper's formulation).
    #[inline]
    pub fn can_rotate(&self, angle_rad: f64, dt_s: f64) -> bool {
        // Sub-microradian slack absorbs floating-point noise from the
        // fixed-point solution of the arrival-time equation.
        angle_rad <= self.max_angle_rad(dt_s) + 1e-9 || angle_rad <= 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Adacs::new(0.0, 0.0).is_err());
        assert!(Adacs::new(-3.0, 0.0).is_err());
        assert!(Adacs::new(3.0, -1.0).is_err());
    }

    #[test]
    fn paper_max_ang_formula() {
        // MaxAng(t) = 3 * (t - 0.67) deg/s.
        let a = Adacs::paper_default();
        assert_eq!(a.max_angle_rad(0.5), 0.0); // below overhead
        let deg = a.max_angle_rad(2.67).to_degrees();
        assert!((deg - 6.0).abs() < 1e-9, "deg {deg}");
    }

    #[test]
    fn slew_time_inverts_max_angle() {
        let a = Adacs::paper_default();
        for angle_deg in [0.5f64, 3.0, 11.0, 22.0] {
            let t = a.min_slew_time_s(angle_deg.to_radians());
            let back = a.max_angle_rad(t).to_degrees();
            assert!((back - angle_deg).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_rotation_is_free() {
        let a = Adacs::paper_default();
        assert_eq!(a.min_slew_time_s(0.0), 0.0);
        assert!(a.can_rotate(0.0, 0.0));
    }

    #[test]
    fn faster_wheel_slews_faster() {
        let slow = Adacs::paper_default();
        let fast = Adacs::high_end();
        let angle = 10.0_f64.to_radians();
        assert!(fast.min_slew_time_s(angle) < slow.min_slew_time_s(angle));
    }

    #[test]
    fn can_rotate_respects_boundary() {
        let a = Adacs::paper_default();
        let angle = 3.0_f64.to_radians();
        let t = a.min_slew_time_s(angle);
        assert!(a.can_rotate(angle, t));
        assert!(!a.can_rotate(angle, t - 0.01));
    }
}
