//! Pointing geometry in the flat along-track frame (paper §4.2).
//!
//! The scheduler works in a ground-fixed frame aligned with the orbit's
//! ground track: **x** is cross-track (meters, positive right of flight)
//! and **y** is along-track (meters, increasing in the flight direction).
//! A satellite's subsatellite point moves as `y(t) = y₀ + v·t` at `x = 0`.
//!
//! Pointing at a ground point from altitude `A` makes an off-nadir angle
//! `atan(‖target − nadir‖ / A)` (the exact form of the paper's Eq. 2),
//! and the rotation between two captures is the 3-D angle between the
//! two satellite→target vectors evaluated at their respective capture
//! times (the exact form of the paper's Eq. 1).

use crate::CoreError;

/// A ground point in the along-track frame, meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GroundPoint {
    /// Cross-track offset (positive = right of flight direction).
    pub cross_m: f64,
    /// Along-track position.
    pub along_m: f64,
}

impl GroundPoint {
    /// Creates a ground point.
    #[inline]
    pub const fn new(cross_m: f64, along_m: f64) -> Self {
        GroundPoint { cross_m, along_m }
    }

    /// Euclidean ground distance to another point.
    #[inline]
    pub fn distance_m(&self, other: &GroundPoint) -> f64 {
        let dx = self.cross_m - other.cross_m;
        let dy = self.along_m - other.along_m;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Off-nadir angle (radians) when a satellite whose subsatellite point is
/// at along-track position `sat_along_m` points at `target` from
/// `altitude_m`.
#[inline]
pub fn off_nadir_rad(target: &GroundPoint, sat_along_m: f64, altitude_m: f64) -> f64 {
    let dx = target.cross_m;
    let dy = target.along_m - sat_along_m;
    ((dx * dx + dy * dy).sqrt() / altitude_m).atan()
}

/// Exact rotation (radians) between pointing at `t1` while the satellite
/// is at `sat_along_1` and pointing at `t2` while at `sat_along_2`:
/// the 3-D angle between the two satellite→target vectors. Reduces to the
/// paper's small-angle Eq. 1 (`‖P₂ − (P₁ + Fly(Δt))‖ / Altitude`) for
/// small off-nadir angles.
pub fn rotation_rad(
    t1: &GroundPoint,
    sat_along_1: f64,
    t2: &GroundPoint,
    sat_along_2: f64,
    altitude_m: f64,
) -> f64 {
    let v1 = (t1.cross_m, t1.along_m - sat_along_1, -altitude_m);
    let v2 = (t2.cross_m, t2.along_m - sat_along_2, -altitude_m);
    let dot = v1.0 * v2.0 + v1.1 * v2.1 + v1.2 * v2.2;
    let cross = (
        v1.1 * v2.2 - v1.2 * v2.1,
        v1.2 * v2.0 - v1.0 * v2.2,
        v1.0 * v2.1 - v1.1 * v2.0,
    );
    let cross_norm = (cross.0 * cross.0 + cross.1 * cross.1 + cross.2 * cross.2).sqrt();
    cross_norm.atan2(dot)
}

/// A closed time interval `[start_s, end_s]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWindow {
    /// Window start, seconds.
    pub start_s: f64,
    /// Window end, seconds.
    pub end_s: f64,
}

impl TimeWindow {
    /// Creates a window.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for non-finite bounds.
    pub fn new(start_s: f64, end_s: f64) -> Result<Self, CoreError> {
        if !start_s.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "start_s",
                value: start_s,
            });
        }
        if !end_s.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "end_s",
                value: end_s,
            });
        }
        Ok(TimeWindow { start_s, end_s })
    }

    /// Window length in seconds (zero for empty windows).
    #[inline]
    pub fn duration_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }

    /// True when the window contains no time.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end_s < self.start_s
    }

    /// True when `t` lies in the window.
    #[inline]
    pub fn contains(&self, t_s: f64) -> bool {
        t_s >= self.start_s - 1e-9 && t_s <= self.end_s + 1e-9
    }

    /// Intersection with another window (may be empty).
    #[inline]
    pub fn intersect(&self, other: &TimeWindow) -> TimeWindow {
        TimeWindow {
            start_s: self.start_s.max(other.start_s),
            end_s: self.end_s.min(other.end_s),
        }
    }
}

/// Computes the visibility window of a target for a follower whose
/// subsatellite point moves as `y(t) = follower_along_at_0 + v·t`
/// (paper Eq. 2): the times at which the target's off-nadir angle is at
/// most `theta_max_rad`. Returns `None` when the target's cross-track
/// offset exceeds the pointing cone entirely.
pub fn visibility_window(
    target: &GroundPoint,
    follower_along_at_0_m: f64,
    ground_speed_m_s: f64,
    theta_max_rad: f64,
    altitude_m: f64,
) -> Option<TimeWindow> {
    let reach = altitude_m * theta_max_rad.tan();
    let x2 = target.cross_m * target.cross_m;
    if x2 > reach * reach {
        return None;
    }
    let half = (reach * reach - x2).sqrt();
    let t_center = (target.along_m - follower_along_at_0_m) / ground_speed_m_s;
    let dt = half / ground_speed_m_s;
    Some(TimeWindow {
        start_s: t_center - dt,
        end_s: t_center + dt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALT: f64 = 475_000.0;

    #[test]
    fn off_nadir_at_nadir_is_zero() {
        let t = GroundPoint::new(0.0, 1000.0);
        assert_eq!(off_nadir_rad(&t, 1000.0, ALT), 0.0);
    }

    #[test]
    fn off_nadir_matches_small_angle() {
        // 47.5 km offset at 475 km altitude: atan(0.1) ≈ 0.0997 rad.
        let t = GroundPoint::new(47_500.0, 0.0);
        let a = off_nadir_rad(&t, 0.0, ALT);
        assert!((a - 0.1f64.atan()).abs() < 1e-12);
    }

    #[test]
    fn rotation_is_symmetric_and_zero_for_same_relative_geometry() {
        let a = GroundPoint::new(10_000.0, 0.0);
        let b = GroundPoint::new(-5_000.0, 40_000.0);
        let r1 = rotation_rad(&a, 0.0, &b, 30_000.0, ALT);
        let r2 = rotation_rad(&b, 30_000.0, &a, 0.0, ALT);
        assert!((r1 - r2).abs() < 1e-12);
        // Tracking the satellite: same offset relative to nadir → no
        // rotation needed.
        let c1 = GroundPoint::new(10_000.0, 0.0);
        let c2 = GroundPoint::new(10_000.0, 50_000.0);
        assert!(rotation_rad(&c1, -5_000.0, &c2, 45_000.0, ALT) < 1e-12);
    }

    #[test]
    fn rotation_matches_paper_small_angle_formula() {
        // Paper Eq. 1: |P2 - (P1 + Fly)| / Altitude, for small angles.
        let p1 = GroundPoint::new(5_000.0, 10_000.0);
        let p2 = GroundPoint::new(-8_000.0, 60_000.0);
        let (s1, s2) = (0.0, 40_000.0);
        let exact = rotation_rad(&p1, s1, &p2, s2, ALT);
        let u1 = ((p1.cross_m), (p1.along_m - s1));
        let u2 = ((p2.cross_m), (p2.along_m - s2));
        let approx = (((u2.0 - u1.0).powi(2) + (u2.1 - u1.1).powi(2)).sqrt()) / ALT;
        assert!(
            (exact - approx).abs() / approx < 0.01,
            "{exact} vs {approx}"
        );
    }

    #[test]
    fn window_operations() {
        let a = TimeWindow::new(0.0, 10.0).unwrap();
        let b = TimeWindow::new(5.0, 15.0).unwrap();
        let i = a.intersect(&b);
        assert_eq!((i.start_s, i.end_s), (5.0, 10.0));
        assert!(a.contains(0.0) && a.contains(10.0) && !a.contains(10.1));
        assert!(!a.is_empty());
        let empty = a.intersect(&TimeWindow::new(20.0, 30.0).unwrap());
        assert!(empty.is_empty());
        assert_eq!(empty.duration_s(), 0.0);
    }

    #[test]
    fn window_rejects_nan() {
        assert!(TimeWindow::new(f64::NAN, 0.0).is_err());
        assert!(TimeWindow::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn visibility_window_centered_on_overflight() {
        let spec = crate::SensingSpec::paper_default();
        let target = GroundPoint::new(0.0, 100_000.0);
        let w = visibility_window(
            &target,
            0.0,
            spec.ground_speed_m_s,
            spec.theta_max_rad,
            spec.altitude_m,
        )
        .unwrap();
        // Overflight at t = 100km / 7.1 km/s ≈ 14.08 s; half-window =
        // 92.3 km / 7.1 km/s ≈ 13 s.
        let center = (w.start_s + w.end_s) / 2.0;
        assert!((center - 14.08).abs() < 0.1, "center {center}");
        assert!(
            (w.duration_s() - 26.0).abs() < 1.0,
            "duration {}",
            w.duration_s()
        );
    }

    #[test]
    fn visibility_shrinks_with_cross_track_offset() {
        let spec = crate::SensingSpec::paper_default();
        let mut last = f64::INFINITY;
        for x in [0.0, 30_000.0, 60_000.0, 90_000.0] {
            let w = visibility_window(
                &GroundPoint::new(x, 0.0),
                -100_000.0,
                spec.ground_speed_m_s,
                spec.theta_max_rad,
                spec.altitude_m,
            )
            .unwrap();
            assert!(w.duration_s() < last);
            last = w.duration_s();
        }
    }

    #[test]
    fn visibility_is_none_beyond_cone() {
        let spec = crate::SensingSpec::paper_default();
        assert!(visibility_window(
            &GroundPoint::new(93_000.0, 0.0),
            0.0,
            spec.ground_speed_m_s,
            spec.theta_max_rad,
            spec.altitude_m,
        )
        .is_none());
    }

    #[test]
    fn off_nadir_at_window_edges_equals_theta_max() {
        let spec = crate::SensingSpec::paper_default();
        let target = GroundPoint::new(40_000.0, 200_000.0);
        let w = visibility_window(
            &target,
            0.0,
            spec.ground_speed_m_s,
            spec.theta_max_rad,
            spec.altitude_m,
        )
        .unwrap();
        for t in [w.start_s, w.end_s] {
            let sat = spec.ground_speed_m_s * t;
            let a = off_nadir_rad(&target, sat, spec.altitude_m);
            assert!((a - spec.theta_max_rad).abs() < 1e-9, "angle {a} at t {t}");
        }
    }
}
