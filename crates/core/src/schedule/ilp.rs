use super::graph::{Arc, End, OpportunityGraph};
use super::{Capture, Schedule, Scheduler, SchedulingProblem};
use crate::CoreError;
pub use eagleeye_ilp::SolverTier;
use eagleeye_ilp::{Model, Sense, SolveOptions, SolveStatus, VarId};
use std::collections::BTreeMap;
use std::time::Duration;

/// The paper's ILP-based actuation-aware scheduler (§4.3).
///
/// Builds the opportunity graph (capture slots + feasibility arcs +
/// rest chains), formulates target capture as a maximum-value flow of
/// one unit per follower with "each target at most once" coupling
/// constraints, and solves it exactly with `eagleeye-ilp`. The LP
/// relaxation of this near-network structure is almost always integral,
/// so branch-and-bound typically closes at the root node — the reason
/// the paper's Fig. 12a runtime stays low and flat in target count.
///
/// For very large joint instances (many followers × many tasks) the
/// scheduler falls back to sequential per-follower ILPs — an exact solve
/// per follower on the remaining tasks — to bound memory; the threshold
/// is configurable.
///
/// # Example
///
/// ```
/// use eagleeye_core::schedule::{FollowerState, IlpScheduler, Scheduler, SchedulingProblem, TaskSpec};
/// use eagleeye_core::SensingSpec;
///
/// let p = SchedulingProblem::new(
///     SensingSpec::paper_default(),
///     vec![TaskSpec::new(0.0, 40_000.0, 1.0), TaskSpec::new(10_000.0, 80_000.0, 1.0)],
///     vec![FollowerState::at_start(-100_000.0)],
/// )?;
/// let s = IlpScheduler::default().schedule(&p)?;
/// assert_eq!(s.captured_count(), 2);
/// # Ok::<(), eagleeye_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IlpScheduler {
    /// Capture slots per visibility window (0 = auto: 5 for instances up
    /// to 20 tasks, 3 up to 40, 2 beyond).
    pub slots_per_task: usize,
    /// Solver wall-clock limit per ILP.
    pub time_limit: Duration,
    /// Above this joint capture-node count with more than one follower,
    /// decompose into sequential per-follower solves.
    pub joint_node_limit: usize,
    /// Which `eagleeye-ilp` solver tier runs the per-horizon MILPs.
    /// Defaults to [`SolverTier::Dense`] — the bit-stable path all
    /// golden digests were recorded on; [`SolverTier::Sparse`] /
    /// [`SolverTier::Auto`] enable the presolved sparse engine.
    pub tier: SolverTier,
}

impl Default for IlpScheduler {
    fn default() -> Self {
        IlpScheduler {
            slots_per_task: 0,
            time_limit: Duration::from_secs(10),
            joint_node_limit: 420,
            tier: SolverTier::Dense,
        }
    }
}

/// Diagnostics from one [`IlpScheduler::schedule_with_stats`] run —
/// the observability hook the resilient scheduler uses to decide when
/// the ILP degraded internally and a greedy fallback should be
/// recorded (or substituted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IlpRunStats {
    /// Number of ILP subproblems attempted (1, or one per follower
    /// under sequential decomposition).
    pub subproblems: usize,
    /// Subproblems abandoned on the wall-clock deadline.
    pub deadline_hits: usize,
    /// Subproblems abandoned on the simplex iteration cap.
    pub iteration_limit_hits: usize,
    /// Branch-and-bound nodes whose LP relaxation was solved, summed
    /// over all subproblems.
    pub nodes_explored: usize,
    /// Nodes discarded by the incumbent bound, summed over all
    /// subproblems.
    pub nodes_pruned: usize,
    /// Total simplex iterations across all subproblems.
    pub lp_iterations: usize,
    /// Total basis-changing simplex pivots across all subproblems.
    pub lp_pivots: usize,
    /// Incumbent replacements across all subproblems.
    pub incumbent_updates: usize,
    /// Branch-and-bound nodes whose LP relaxation was solved from a
    /// warm-started (parent) basis, summed over all subproblems.
    pub warm_starts: usize,
    /// Nodes whose warm basis was rejected (failed installation or dual
    /// restoration) and fell back to a cold solve.
    pub warm_rejects: usize,
    /// Incumbent hints accepted by the solver across all subproblems
    /// (the what-if path never passes hints, so this stays 0 there).
    pub hints_accepted: usize,
    /// Subproblems solved on the sparse tier (0 under the dense
    /// default, so dense digests are unaffected).
    pub sparse_solves: usize,
    /// Variables eliminated by presolve, summed over all subproblems
    /// (sparse tier only).
    pub presolve_vars_eliminated: usize,
    /// Constraint rows removed by presolve, summed over all
    /// subproblems (sparse tier only).
    pub presolve_rows_removed: usize,
    /// True when the final answer came from the greedy baseline because
    /// it beat the (coarsely discretized) ILP solution.
    pub greedy_dominated: bool,
}

impl IlpRunStats {
    /// True when every subproblem solved cleanly and the ILP solution
    /// was kept.
    pub fn clean(&self) -> bool {
        self.deadline_hits == 0 && self.iteration_limit_hits == 0 && !self.greedy_dominated
    }
}

impl IlpScheduler {
    fn slots_for(&self, n_tasks: usize) -> usize {
        if self.slots_per_task > 0 {
            self.slots_per_task
        } else if n_tasks <= 20 {
            5
        } else if n_tasks <= 40 {
            3
        } else {
            2
        }
    }

    /// Retimes every capture to its earliest feasible moment (the slot
    /// grid quantizes capture times; left-shifting recovers the slack)
    /// and then greedily appends uncaptured tasks wherever they still
    /// fit. Both passes preserve feasibility, so the result dominates the
    /// raw discretized ILP solution.
    fn compact_and_augment(&self, problem: &SchedulingProblem, schedule: &mut Schedule) {
        let n_tasks = problem.tasks().len();
        let mut captured = vec![false; n_tasks];
        for seq in &schedule.sequences {
            for c in seq {
                captured[c.task] = true;
            }
        }

        // Left-shift pass.
        let mut cursors: Vec<(f64, (f64, f64))> = problem
            .followers()
            .iter()
            .map(|f| (f.available_from_s, f.pointing_offset))
            .collect();
        for (f, seq) in schedule.sequences.iter_mut().enumerate() {
            let mut shifted = Vec::with_capacity(seq.len());
            for cap in seq.iter() {
                let (t0, u0) = cursors[f];
                match problem.earliest_capture(f, cap.task, t0, u0) {
                    Some(t) => {
                        cursors[f] = (t, problem.capture_offset(f, cap.task, t));
                        shifted.push(Capture {
                            task: cap.task,
                            time_s: t,
                        });
                    }
                    None => {
                        // Unreachable from the shifted predecessor (its
                        // pointing differs from the slot-time geometry):
                        // drop the capture and let augmentation retry it.
                        captured[cap.task] = false;
                    }
                }
            }
            *seq = shifted;
        }

        // Greedy append pass over uncaptured tasks.
        loop {
            let mut best: Option<(usize, usize, f64)> = None;
            for (f, cursor) in cursors.iter().enumerate() {
                for (j, taken) in captured.iter().enumerate() {
                    if *taken {
                        continue;
                    }
                    if let Some(t) = problem.earliest_capture(f, j, cursor.0, cursor.1) {
                        match best {
                            Some((_, _, bt)) if bt <= t => {}
                            _ => best = Some((f, j, t)),
                        }
                    }
                }
            }
            let Some((f, j, t)) = best else { break };
            captured[j] = true;
            schedule.sequences[f].push(Capture { task: j, time_s: t });
            cursors[f] = (t, problem.capture_offset(f, j, t));
        }
    }

    /// Solves one (sub)instance over the given followers and non-excluded
    /// tasks; returns per-follower sequences.
    fn solve_subproblem(
        &self,
        problem: &SchedulingProblem,
        followers: &[usize],
        excluded: &[bool],
        stats: &mut IlpRunStats,
    ) -> Result<Vec<(usize, Vec<Capture>)>, CoreError> {
        stats.subproblems += 1;
        let slots = self.slots_for(excluded.iter().filter(|e| !**e).count());
        let graph = OpportunityGraph::build(problem, slots, Some(followers), excluded);
        if graph.nodes.is_empty() {
            return Ok(followers.iter().map(|&f| (f, Vec::new())).collect());
        }

        let mut model = Model::maximize();
        let arc_vars: Vec<VarId> = graph
            .arcs
            .iter()
            .map(|a| {
                let value = match a.to {
                    End::Node(v) => problem.tasks()[graph.nodes[v].task].value,
                    _ => 0.0,
                };
                model.add_binary_var(value)
            })
            .collect();

        // Index arcs by endpoint for constraint assembly. Ordered maps:
        // constraint order must be deterministic so identical problems
        // produce identical schedules (ties in the simplex are broken by
        // row order).
        let mut out_of: BTreeMap<End, Vec<usize>> = BTreeMap::new();
        let mut into: BTreeMap<End, Vec<usize>> = BTreeMap::new();
        let mut source_out: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, a) in graph.arcs.iter().enumerate() {
            match a.from {
                End::Source => source_out.entry(a.follower).or_default().push(i),
                from => out_of.entry(from).or_default().push(i),
            }
            into.entry(a.to).or_default().push(i);
        }

        // One unit of flow per follower.
        for &f in followers {
            if let Some(arcs) = source_out.get(&f) {
                model.add_constraint(arcs.iter().map(|&i| (arc_vars[i], 1.0)), Sense::Le, 1.0)?;
            }
        }

        // Flow conservation (out ≤ in) at every node and rest relay.
        let mut ends: Vec<End> = Vec::new();
        ends.extend((0..graph.nodes.len()).map(End::Node));
        for (f, rests) in graph.rest_times.iter().enumerate() {
            ends.extend((0..rests.len()).map(|q| End::Rest(f, q)));
        }
        for end in ends {
            let outs = out_of.get(&end);
            if outs.is_none() {
                continue;
            }
            let ins = into.get(&end);
            let terms = outs
                .into_iter()
                .flatten()
                .map(|&i| (arc_vars[i], 1.0))
                .chain(ins.into_iter().flatten().map(|&i| (arc_vars[i], -1.0)));
            model.add_constraint(terms, Sense::Le, 0.0)?;
        }

        // Capture-once coupling per task.
        let mut task_in: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, a) in graph.arcs.iter().enumerate() {
            if let End::Node(v) = a.to {
                task_in.entry(graph.nodes[v].task).or_default().push(i);
            }
        }
        for arcs in task_in.values() {
            model.add_constraint(arcs.iter().map(|&i| (arc_vars[i], 1.0)), Sense::Le, 1.0)?;
        }

        let sol = match model.solve(&SolveOptions {
            time_limit: Some(self.time_limit),
            tier: self.tier,
            ..SolveOptions::default()
        }) {
            Ok(sol) => sol,
            // A degenerate instance exhausting the simplex iteration cap
            // degrades to an empty ILP result; the greedy augmentation
            // and fallback passes still produce a feasible schedule. The
            // stats record the hit so callers can observe the fallback.
            Err(eagleeye_ilp::IlpError::IterationLimit { .. }) => {
                stats.iteration_limit_hits += 1;
                return Ok(followers.iter().map(|&f| (f, Vec::new())).collect());
            }
            Err(eagleeye_ilp::IlpError::Deadline) => {
                stats.deadline_hits += 1;
                return Ok(followers.iter().map(|&f| (f, Vec::new())).collect());
            }
            Err(e) => return Err(e.into()),
        };
        let solver = *sol.stats();
        stats.nodes_explored += solver.nodes_explored;
        stats.nodes_pruned += solver.nodes_pruned;
        stats.lp_iterations += solver.lp_iterations;
        stats.lp_pivots += solver.lp_pivots;
        stats.incumbent_updates += solver.incumbent_updates;
        stats.warm_starts += solver.warm_starts;
        stats.warm_rejects += solver.warm_rejects;
        stats.hints_accepted += solver.hints_accepted;
        stats.sparse_solves += solver.sparse_solves;
        stats.presolve_vars_eliminated += solver.presolve_vars_eliminated;
        stats.presolve_rows_removed += solver.presolve_rows_removed;
        // Branch-and-bound converts an expired deadline into a limit
        // status (`Feasible` with the incumbent, `Unknown` without one)
        // rather than an error; count those as deadline hits too.
        if matches!(sol.status(), SolveStatus::Feasible | SolveStatus::Unknown) {
            stats.deadline_hits += 1;
        }
        if !sol.is_usable() {
            return Ok(followers.iter().map(|&f| (f, Vec::new())).collect());
        }

        // Extract one path per follower by walking chosen arcs.
        let chosen: Vec<&Arc> = graph
            .arcs
            .iter()
            .enumerate()
            .filter(|(i, _)| sol.value(arc_vars[*i]) > 0.5)
            .map(|(_, a)| a)
            .collect();
        let mut result = Vec::new();
        for &f in followers {
            let mut seq = Vec::new();
            let mut at = End::Source;
            // Bounded walk (paths are acyclic and finite).
            for _ in 0..graph.arcs.len() + 1 {
                let next = chosen
                    .iter()
                    .find(|a| a.follower == f && a.from == at)
                    .map(|a| a.to);
                match next {
                    Some(End::Node(v)) => {
                        let n = &graph.nodes[v];
                        seq.push(Capture {
                            task: n.task,
                            time_s: n.time_s,
                        });
                        at = End::Node(v);
                    }
                    Some(rest @ End::Rest(..)) => at = rest,
                    Some(End::Source) | None => break,
                }
            }
            result.push((f, seq));
        }
        Ok(result)
    }
}

impl IlpScheduler {
    /// Like [`Scheduler::schedule`] but also returns [`IlpRunStats`]
    /// describing how the answer was obtained (deadline hits, iteration
    /// caps, greedy dominance) — the hook `ResilientScheduler` uses to
    /// report which solver actually produced each horizon.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Solver`] on unrecoverable ILP failures
    /// (deadline and iteration-cap exhaustion are *recovered*, not
    /// errored: they degrade to the greedy augmentation and are counted
    /// in the stats).
    pub fn schedule_with_stats(
        &self,
        problem: &SchedulingProblem,
    ) -> Result<(Schedule, IlpRunStats), CoreError> {
        let n_followers = problem.followers().len();
        let n_tasks = problem.tasks().len();
        let mut schedule = Schedule::empty(n_followers);
        let mut stats = IlpRunStats::default();
        if n_followers == 0 || n_tasks == 0 {
            return Ok((schedule, stats));
        }

        let slots = self.slots_for(n_tasks);
        let joint_nodes_estimate = n_followers * n_tasks * slots;
        let mut excluded = vec![false; n_tasks];

        if n_followers == 1 || joint_nodes_estimate <= self.joint_node_limit {
            let all: Vec<usize> = (0..n_followers).collect();
            for (f, seq) in self.solve_subproblem(problem, &all, &excluded, &mut stats)? {
                schedule.sequences[f] = seq;
            }
        } else {
            // Sequential decomposition: exact per-follower solves on the
            // remaining tasks.
            for f in 0..n_followers {
                let result = self.solve_subproblem(problem, &[f], &excluded, &mut stats)?;
                for (ff, seq) in result {
                    for c in &seq {
                        excluded[c.task] = true;
                    }
                    schedule.sequences[ff] = seq;
                }
            }
        }

        self.compact_and_augment(problem, &mut schedule);
        schedule.total_value = schedule
            .captured_tasks()
            .iter()
            .map(|&j| problem.tasks()[j].value)
            .sum();

        // The greedy pass is three orders of magnitude cheaper than the
        // ILP; never return a schedule it would beat (can occur when the
        // slot grid is very coarse on large instances).
        let greedy = super::GreedyScheduler.schedule(problem)?;
        if greedy.total_value > schedule.total_value + 1e-9 {
            stats.greedy_dominated = true;
            return Ok((greedy, stats));
        }
        Ok((schedule, stats))
    }
}

impl Scheduler for IlpScheduler {
    fn schedule(&self, problem: &SchedulingProblem) -> Result<Schedule, CoreError> {
        self.schedule_with_stats(problem).map(|(s, _)| s)
    }

    fn name(&self) -> &'static str {
        "ilp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FollowerState, TaskSpec};
    use crate::SensingSpec;

    fn problem(tasks: Vec<TaskSpec>, followers: Vec<FollowerState>) -> SchedulingProblem {
        SchedulingProblem::new(SensingSpec::paper_default(), tasks, followers).unwrap()
    }

    #[test]
    fn empty_problem_schedules_empty() {
        let p = problem(vec![], vec![FollowerState::at_start(0.0)]);
        let s = IlpScheduler::default().schedule(&p).unwrap();
        assert_eq!(s.captured_count(), 0);
        s.validate(&p).unwrap();
    }

    #[test]
    fn single_task_is_captured() {
        let p = problem(
            vec![TaskSpec::new(10_000.0, 50_000.0, 3.0)],
            vec![FollowerState::at_start(-100_000.0)],
        );
        let s = IlpScheduler::default().schedule(&p).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.captured_count(), 1);
        assert!((s.total_value - 3.0).abs() < 1e-9);
    }

    #[test]
    fn well_spaced_tasks_are_all_captured() {
        let tasks: Vec<TaskSpec> = (0..8)
            .map(|i| {
                TaskSpec::new(
                    (i % 3) as f64 * 10_000.0,
                    30_000.0 + i as f64 * 20_000.0,
                    1.0,
                )
            })
            .collect();
        let p = problem(tasks, vec![FollowerState::at_start(-100_000.0)]);
        let s = IlpScheduler::default().schedule(&p).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.captured_count(), 8);
    }

    #[test]
    fn conflicting_tasks_pick_higher_value() {
        // Two targets at the same along-track position but on opposite
        // cross-track extremes: a single follower cannot slew between
        // them in time, so it must choose the more valuable.
        let p = problem(
            vec![
                TaskSpec::new(-88_000.0, 50_000.0, 1.0),
                TaskSpec::new(88_000.0, 50_000.0, 5.0),
            ],
            vec![FollowerState::at_start(-100_000.0)],
        );
        let s = IlpScheduler::default().schedule(&p).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.captured_count(), 1);
        assert_eq!(s.captured_tasks().into_iter().next(), Some(1));
    }

    #[test]
    fn two_followers_capture_conflicting_pair() {
        let p = problem(
            vec![
                TaskSpec::new(-88_000.0, 50_000.0, 1.0),
                TaskSpec::new(88_000.0, 50_000.0, 5.0),
            ],
            vec![
                FollowerState::at_start(-100_000.0),
                FollowerState::at_start(-120_000.0),
            ],
        );
        let s = IlpScheduler::default().schedule(&p).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.captured_count(), 2);
    }

    #[test]
    fn no_task_captured_twice_across_followers() {
        let tasks: Vec<TaskSpec> = (0..5)
            .map(|i| TaskSpec::new(0.0, 30_000.0 + i as f64 * 25_000.0, 1.0))
            .collect();
        let p = problem(
            tasks,
            vec![
                FollowerState::at_start(-100_000.0),
                FollowerState::at_start(-120_000.0),
            ],
        );
        let s = IlpScheduler::default().schedule(&p).unwrap();
        s.validate(&p).unwrap(); // validate() rejects duplicates
        assert_eq!(s.captured_count(), 5);
    }

    #[test]
    fn sequential_decomposition_still_validates() {
        let tasks: Vec<TaskSpec> = (0..40)
            .map(|i| {
                TaskSpec::new(
                    ((i * 37) % 160) as f64 * 1_000.0 - 80_000.0,
                    20_000.0 + ((i * 13) % 90) as f64 * 1_200.0,
                    1.0 + (i % 3) as f64,
                )
            })
            .collect();
        let p = problem(
            tasks,
            vec![
                FollowerState::at_start(-100_000.0),
                FollowerState::at_start(-120_000.0),
                FollowerState::at_start(-140_000.0),
            ],
        );
        // Force decomposition with a low threshold.
        let s = IlpScheduler {
            joint_node_limit: 10,
            ..IlpScheduler::default()
        }
        .schedule(&p)
        .unwrap();
        s.validate(&p).unwrap();
        assert!(s.captured_count() > 10);
    }

    #[test]
    fn run_stats_aggregate_solver_counters() {
        let tasks: Vec<TaskSpec> = (0..6)
            .map(|i| TaskSpec::new(0.0, 30_000.0 + i as f64 * 20_000.0, 1.0))
            .collect();
        let p = problem(tasks, vec![FollowerState::at_start(-100_000.0)]);
        let (s, stats) = IlpScheduler::default().schedule_with_stats(&p).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(stats.subproblems, 1);
        assert!(stats.nodes_explored >= 1);
        assert!(stats.lp_iterations >= 1);
        assert!(stats.lp_pivots <= stats.lp_iterations);
        // A feasible instance always produces at least one incumbent.
        assert!(stats.incumbent_updates >= 1);
        // Warm-start activity is only possible on explored child nodes.
        assert!(stats.warm_starts + stats.warm_rejects <= stats.nodes_explored);
        assert!(stats.clean());
    }

    #[test]
    fn respects_initial_pointing_constraint() {
        // Follower already pointed far left; an immediate far-right task
        // is infeasible, a later one is fine.
        let mut f = FollowerState::at_start(-20_000.0);
        f.pointing_offset = (-88_000.0, 0.0);
        let p = problem(vec![TaskSpec::new(88_000.0, -14_000.0, 1.0)], vec![f]);
        // Window for that task ends almost immediately (the follower is
        // nearly past it); slewing 176 km of cross-track takes ~8 s.
        let s = IlpScheduler::default().schedule(&p).unwrap();
        s.validate(&p).unwrap();
    }
}
