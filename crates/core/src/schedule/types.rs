use super::SchedulingProblem;
use crate::CoreError;
use std::collections::BTreeSet;

/// One scheduled capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capture {
    /// Index of the captured task in the problem's task list.
    pub task: usize,
    /// Capture time, seconds.
    pub time_s: f64,
}

/// A complete schedule: one capture sequence per follower.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    /// `sequences[f]` is follower `f`'s time-ordered capture list.
    pub sequences: Vec<Vec<Capture>>,
    /// Total value of distinct captured tasks.
    pub total_value: f64,
}

impl Schedule {
    /// An empty schedule for `n_followers` followers.
    pub fn empty(n_followers: usize) -> Self {
        Schedule {
            sequences: vec![Vec::new(); n_followers],
            total_value: 0.0,
        }
    }

    /// Distinct captured task indices.
    pub fn captured_tasks(&self) -> BTreeSet<usize> {
        self.sequences.iter().flatten().map(|c| c.task).collect()
    }

    /// Number of distinct tasks captured.
    pub fn captured_count(&self) -> usize {
        self.captured_tasks().len()
    }

    /// Time of the last capture across all followers (the schedule
    /// makespan), or `None` for an empty schedule.
    pub fn makespan_s(&self) -> Option<f64> {
        self.sequences
            .iter()
            .flatten()
            .map(|c| c.time_s)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// Captures per follower — the load-balance view used by trade
    /// studies (an idle follower suggests spending that satellite on
    /// another group instead).
    pub fn captures_per_follower(&self) -> Vec<usize> {
        self.sequences.iter().map(Vec::len).collect()
    }

    /// Mean time between consecutive captures of the busiest follower,
    /// seconds; `None` when no follower has two captures. A small gap
    /// means the ADACS slew rate, not target availability, is binding.
    pub fn min_intercapture_gap_s(&self) -> Option<f64> {
        self.sequences
            .iter()
            .flat_map(|seq| seq.windows(2).map(|w| w[1].time_s - w[0].time_s))
            .fold(None, |acc, g| Some(acc.map_or(g, |a: f64| a.min(g))))
    }

    /// Checks the schedule against the paper's constraints:
    ///
    /// * capture times lie in each task's visibility window (C2: the
    ///   window *is* the off-nadir constraint, re-verified directly);
    /// * consecutive captures satisfy the actuation constraint C1,
    ///   including the slew from the follower's initial pointing;
    /// * each task is captured at most once across all followers;
    /// * sequences are time-ordered and start after availability.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ScheduleViolation`] describing the first
    /// violated condition.
    ///
    /// This is a convenience wrapper around the standalone
    /// [`validate_schedule`](super::validate_schedule) function.
    pub fn validate(&self, problem: &SchedulingProblem) -> Result<(), CoreError> {
        super::resilient::validate_schedule(problem, self)
    }
}

/// A follower-scheduling algorithm.
pub trait Scheduler {
    /// Produces a feasible schedule for the problem.
    ///
    /// # Errors
    ///
    /// Implementations return [`CoreError`] on internal solver failures;
    /// an infeasible-to-improve instance yields an empty schedule, not
    /// an error.
    fn schedule(&self, problem: &SchedulingProblem) -> Result<Schedule, CoreError>;

    /// Human-readable solver name for experiment output.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FollowerState, TaskSpec};
    use crate::SensingSpec;

    fn one_task_problem() -> SchedulingProblem {
        SchedulingProblem::new(
            SensingSpec::paper_default(),
            vec![TaskSpec::new(0.0, 50_000.0, 2.0)],
            vec![FollowerState::at_start(-100_000.0)],
        )
        .unwrap()
    }

    #[test]
    fn empty_schedule_validates() {
        let p = one_task_problem();
        Schedule::empty(1).validate(&p).unwrap();
    }

    #[test]
    fn wrong_follower_count_rejected() {
        let p = one_task_problem();
        assert!(Schedule::empty(2).validate(&p).is_err());
    }

    #[test]
    fn valid_single_capture_passes() {
        let p = one_task_problem();
        let t = p.earliest_capture(0, 0, 0.0, (0.0, 0.0)).unwrap();
        let s = Schedule {
            sequences: vec![vec![Capture { task: 0, time_s: t }]],
            total_value: 2.0,
        };
        s.validate(&p).unwrap();
    }

    #[test]
    fn capture_outside_window_rejected() {
        let p = one_task_problem();
        let w = p.window(0, 0).unwrap();
        let s = Schedule {
            sequences: vec![vec![Capture {
                task: 0,
                time_s: w.end_s + 10.0,
            }]],
            total_value: 2.0,
        };
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn duplicate_capture_rejected() {
        let p = one_task_problem();
        let t = p.earliest_capture(0, 0, 0.0, (0.0, 0.0)).unwrap();
        let s = Schedule {
            sequences: vec![vec![
                Capture { task: 0, time_s: t },
                Capture {
                    task: 0,
                    time_s: t + 5.0,
                },
            ]],
            total_value: 2.0,
        };
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn wrong_total_value_rejected() {
        let p = one_task_problem();
        let t = p.earliest_capture(0, 0, 0.0, (0.0, 0.0)).unwrap();
        let s = Schedule {
            sequences: vec![vec![Capture { task: 0, time_s: t }]],
            total_value: 99.0,
        };
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn schedule_statistics() {
        let p = one_task_problem();
        let t = p.earliest_capture(0, 0, 0.0, (0.0, 0.0)).unwrap();
        let s = Schedule {
            sequences: vec![vec![Capture { task: 0, time_s: t }]],
            total_value: 2.0,
        };
        assert_eq!(s.makespan_s(), Some(t));
        assert_eq!(s.captures_per_follower(), vec![1]);
        assert_eq!(s.min_intercapture_gap_s(), None);

        let empty = Schedule::empty(2);
        assert_eq!(empty.makespan_s(), None);
        assert_eq!(empty.captures_per_follower(), vec![0, 0]);
    }

    #[test]
    fn intercapture_gap_spans_sequences() {
        let s = Schedule {
            sequences: vec![
                vec![
                    Capture {
                        task: 0,
                        time_s: 1.0,
                    },
                    Capture {
                        task: 1,
                        time_s: 4.0,
                    },
                ],
                vec![
                    Capture {
                        task: 2,
                        time_s: 10.0,
                    },
                    Capture {
                        task: 3,
                        time_s: 11.5,
                    },
                ],
            ],
            total_value: 4.0,
        };
        assert_eq!(s.min_intercapture_gap_s(), Some(1.5));
        assert_eq!(s.makespan_s(), Some(11.5));
    }

    #[test]
    fn c1_violation_rejected() {
        // Two far-apart targets captured back-to-back with no slew time.
        let p = SchedulingProblem::new(
            SensingSpec::paper_default(),
            vec![
                TaskSpec::new(-80_000.0, 50_000.0, 1.0),
                TaskSpec::new(80_000.0, 50_000.0, 1.0),
            ],
            vec![FollowerState::at_start(-100_000.0)],
        )
        .unwrap();
        let t0 = p.earliest_capture(0, 0, 0.0, (0.0, 0.0)).unwrap();
        let s = Schedule {
            sequences: vec![vec![
                Capture {
                    task: 0,
                    time_s: t0,
                },
                Capture {
                    task: 1,
                    time_s: t0 + 0.1,
                },
            ]],
            total_value: 2.0,
        };
        let err = s.validate(&p).unwrap_err();
        assert!(err.to_string().contains("C1"), "{err}");
    }
}
