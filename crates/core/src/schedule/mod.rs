//! Actuation-aware follower scheduling (paper §3.3, §4.2–4.3).
//!
//! Given the clustered targets of a leader frame, each with a priority
//! value and a visibility window, and the state of each follower
//! (along-track position, current pointing, time it becomes available),
//! produce per-follower capture sequences that maximize the total value
//! of captured targets subject to the paper's constraints:
//!
//! * **C1** — consecutive captures are separated by enough time for the
//!   ADACS to rotate between the two pointings
//!   (`MaxAng(t) = rate·(t − overhead)`).
//! * **C2** — every capture is within the maximum off-nadir angle.
//! * **C3** — the target lies inside the captured footprint (guaranteed
//!   by construction: captures point at cluster centers).
//!
//! Four solvers are provided:
//!
//! * [`IlpScheduler`] — the paper's approach: an ILP over a discretized
//!   *opportunity graph* (capture slots per target, slew-feasibility
//!   arcs, and a "rest chain" encoding that any rotation is feasible
//!   given enough time), solved exactly by `eagleeye-ilp`. Runtime is
//!   low and flat in target count (paper Fig. 12a).
//! * [`GreedyScheduler`] — nearest-feasible-target-next (paper §4.3's
//!   alternative), 4.3–14.4 % less coverage in the paper.
//! * [`AbbScheduler`] — a reimplementation of the prior-work anytime
//!   branch-and-bound over capture *sequences* [Chu et al. 2017], whose
//!   runtime explodes combinatorially past ~19 targets (Fig. 12a).
//! * [`DpScheduler`] — an exact bitmask dynamic program over the same
//!   opportunity graph, single-follower only; the test oracle that
//!   certifies the ILP's optimality.
//!
//! For degraded operation there is additionally
//! [`ResilientScheduler`] — a budgeted wrapper around the ILP with
//! greedy fallback, post-validation ([`validate_schedule`]), and
//! mid-pass failure repair — whose [`ScheduleOutcome`] records which
//! solver produced each horizon and why.

mod abb;
mod dp;
mod graph;
mod greedy;
mod ilp;
mod problem;
mod resilient;
mod types;

pub use abb::AbbScheduler;
pub use dp::DpScheduler;
pub use greedy::GreedyScheduler;
pub use ilp::{IlpRunStats, IlpScheduler, SolverTier};
pub use problem::{FollowerState, SchedulingProblem, TaskSpec};
pub use resilient::{
    validate_schedule, FallbackReason, RepairOutcome, ResilientScheduler, ScheduleOutcome,
    SolverChoice,
};
pub use types::{Capture, Schedule, Scheduler};
