use super::{Capture, Schedule, Scheduler, SchedulingProblem};
use crate::CoreError;

/// The greedy nearest-target baseline (paper §4.3 "Alternative
/// formulations"): each follower repeatedly captures the not-yet-captured
/// target it can reach *soonest*, at the earliest feasible time.
///
/// With several followers the globally earliest (follower, target) pair
/// is chosen each round. The paper measures 4.3–14.4 % lower coverage
/// than the ILP (Fig. 11a).
///
/// # Example
///
/// ```
/// use eagleeye_core::schedule::{FollowerState, GreedyScheduler, Scheduler, SchedulingProblem, TaskSpec};
/// use eagleeye_core::SensingSpec;
///
/// let p = SchedulingProblem::new(
///     SensingSpec::paper_default(),
///     vec![TaskSpec::new(0.0, 40_000.0, 1.0)],
///     vec![FollowerState::at_start(-100_000.0)],
/// )?;
/// let s = GreedyScheduler.schedule(&p)?;
/// assert_eq!(s.captured_count(), 1);
/// # Ok::<(), eagleeye_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GreedyScheduler;

impl Scheduler for GreedyScheduler {
    fn schedule(&self, problem: &SchedulingProblem) -> Result<Schedule, CoreError> {
        let n_followers = problem.followers().len();
        let n_tasks = problem.tasks().len();
        let mut schedule = Schedule::empty(n_followers);
        if n_followers == 0 || n_tasks == 0 {
            return Ok(schedule);
        }

        // Mutable follower cursor: (time available, pointing offset).
        let mut cursors: Vec<(f64, (f64, f64))> = problem
            .followers()
            .iter()
            .map(|f| (f.available_from_s, f.pointing_offset))
            .collect();
        let mut captured = vec![false; n_tasks];

        loop {
            let mut best: Option<(usize, usize, f64)> = None; // (f, j, t)
            for (f, cursor) in cursors.iter().enumerate() {
                for j in 0..n_tasks {
                    if captured[j] {
                        continue;
                    }
                    if let Some(t) = problem.earliest_capture(f, j, cursor.0, cursor.1) {
                        match best {
                            Some((_, _, bt)) if bt <= t => {}
                            _ => best = Some((f, j, t)),
                        }
                    }
                }
            }
            let Some((f, j, t)) = best else { break };
            captured[j] = true;
            schedule.sequences[f].push(Capture { task: j, time_s: t });
            cursors[f] = (t, problem.capture_offset(f, j, t));
        }

        schedule.total_value = schedule
            .captured_tasks()
            .iter()
            .map(|&j| problem.tasks()[j].value)
            .sum();
        Ok(schedule)
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FollowerState, IlpScheduler, TaskSpec};
    use crate::SensingSpec;

    fn problem(tasks: Vec<TaskSpec>, followers: Vec<FollowerState>) -> SchedulingProblem {
        SchedulingProblem::new(SensingSpec::paper_default(), tasks, followers).unwrap()
    }

    #[test]
    fn empty_is_fine() {
        let p = problem(vec![], vec![FollowerState::at_start(0.0)]);
        let s = GreedyScheduler.schedule(&p).unwrap();
        s.validate(&p).unwrap();
    }

    #[test]
    fn greedy_schedules_are_always_feasible() {
        let tasks: Vec<TaskSpec> = (0..12)
            .map(|i| {
                TaskSpec::new(
                    ((i * 53) % 170) as f64 * 1_000.0 - 85_000.0,
                    ((i * 29) % 100) as f64 * 1_100.0,
                    1.0 + (i % 4) as f64 * 0.5,
                )
            })
            .collect();
        let p = problem(tasks, vec![FollowerState::at_start(-100_000.0)]);
        let s = GreedyScheduler.schedule(&p).unwrap();
        s.validate(&p).unwrap();
        assert!(s.captured_count() > 0);
    }

    #[test]
    fn greedy_can_be_value_suboptimal() {
        // Greedy takes the nearest (low-value) target first and misses
        // the far, high-value one; ILP prefers value. This is the §4.3
        // gap. Construct: cheap target dead ahead, valuable target on the
        // opposite extreme whose window closes before greedy can re-slew.
        let p = problem(
            vec![
                TaskSpec::new(-85_000.0, 20_000.0, 0.1),
                TaskSpec::new(88_000.0, 25_000.0, 10.0),
            ],
            vec![FollowerState::at_start(-80_000.0)],
        );
        let g = GreedyScheduler.schedule(&p).unwrap();
        let i = IlpScheduler::default().schedule(&p).unwrap();
        g.validate(&p).unwrap();
        i.validate(&p).unwrap();
        assert!(i.total_value >= g.total_value - 1e-9);
    }

    #[test]
    fn multi_follower_greedy_divides_work() {
        let tasks: Vec<TaskSpec> = (0..6)
            .map(|i| TaskSpec::new(0.0, 20_000.0 + 22_000.0 * i as f64, 1.0))
            .collect();
        let p = problem(
            tasks,
            vec![
                FollowerState::at_start(-100_000.0),
                FollowerState::at_start(-130_000.0),
            ],
        );
        let s = GreedyScheduler.schedule(&p).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.captured_count(), 6);
    }
}
