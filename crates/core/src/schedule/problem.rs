use crate::pointing::{visibility_window, GroundPoint, TimeWindow};
use crate::{CoreError, SensingSpec};

/// One capture task: a clustered target with a priority value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// Footprint center to point at, frame coordinates.
    pub point: GroundPoint,
    /// Priority value (sum of member confidences after clustering).
    pub value: f64,
}

impl TaskSpec {
    /// Creates a task at `(cross_m, along_m)` with the given value.
    pub fn new(cross_m: f64, along_m: f64, value: f64) -> Self {
        TaskSpec {
            point: GroundPoint::new(cross_m, along_m),
            value,
        }
    }
}

/// The state of a follower at scheduling time, as queried by the leader
/// over the crosslink (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FollowerState {
    /// Subsatellite along-track position at `t = 0`, meters. The
    /// follower moves at the spec's ground speed.
    pub along_at_0_m: f64,
    /// Earliest time the follower can begin maneuvering (end of its
    /// previous schedule), seconds.
    pub available_from_s: f64,
    /// Pointing offset from nadir at `available_from_s`
    /// `(cross_m, along_m)` — the residual attitude of the previous
    /// schedule. `(0, 0)` is nadir.
    pub pointing_offset: (f64, f64),
}

impl FollowerState {
    /// A nadir-pointed follower available immediately, whose
    /// subsatellite point is at `along_at_0_m` at `t = 0`.
    pub fn at_start(along_at_0_m: f64) -> Self {
        FollowerState {
            along_at_0_m,
            available_from_s: 0.0,
            pointing_offset: (0.0, 0.0),
        }
    }

    /// Subsatellite along-track position at time `t`.
    #[inline]
    pub fn along_at(&self, t_s: f64, ground_speed_m_s: f64) -> f64 {
        self.along_at_0_m + ground_speed_m_s * t_s
    }
}

/// A fully-specified scheduling instance: sensing configuration, tasks,
/// followers, and the derived per-(follower, task) visibility windows.
///
/// # Example
///
/// ```
/// use eagleeye_core::schedule::{FollowerState, SchedulingProblem, TaskSpec};
/// use eagleeye_core::SensingSpec;
///
/// let p = SchedulingProblem::new(
///     SensingSpec::paper_default(),
///     vec![TaskSpec::new(0.0, 50_000.0, 1.0)],
///     vec![FollowerState::at_start(-100_000.0)],
/// )?;
/// let w = p.window(0, 0).expect("on-track target is visible");
/// assert!(w.duration_s() > 20.0);
/// # Ok::<(), eagleeye_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulingProblem {
    spec: SensingSpec,
    tasks: Vec<TaskSpec>,
    followers: Vec<FollowerState>,
    /// `windows[f][j]`: visibility of task `j` from follower `f`,
    /// already intersected with the follower's availability.
    windows: Vec<Vec<Option<TimeWindow>>>,
}

impl SchedulingProblem {
    /// Builds a problem and precomputes all visibility windows.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the spec fails
    /// validation or a task value is not finite.
    pub fn new(
        spec: SensingSpec,
        tasks: Vec<TaskSpec>,
        followers: Vec<FollowerState>,
    ) -> Result<Self, CoreError> {
        Self::new_with_clip(spec, tasks, followers, None)
    }

    /// Like [`SchedulingProblem::new`], additionally intersecting every
    /// visibility window with `clip`. This models the mix-camera
    /// configuration (paper §4.4): onboard compute time delays the start
    /// of the usable window and the need to resume nadir imaging caps
    /// its end.
    ///
    /// # Errors
    ///
    /// Same as [`SchedulingProblem::new`].
    pub fn new_with_clip(
        spec: SensingSpec,
        tasks: Vec<TaskSpec>,
        followers: Vec<FollowerState>,
        clip: Option<TimeWindow>,
    ) -> Result<Self, CoreError> {
        spec.validate()?;
        for t in &tasks {
            if !t.value.is_finite() {
                return Err(CoreError::InvalidParameter {
                    name: "task value",
                    value: t.value,
                });
            }
        }
        let windows = followers
            .iter()
            .map(|f| {
                tasks
                    .iter()
                    .map(|t| {
                        visibility_window(
                            &t.point,
                            f.along_at_0_m,
                            spec.ground_speed_m_s,
                            spec.theta_max_rad,
                            spec.altitude_m,
                        )
                        .map(|w| {
                            let base = TimeWindow {
                                start_s: w.start_s.max(f.available_from_s),
                                end_s: w.end_s,
                            };
                            match clip {
                                Some(c) => base.intersect(&c),
                                None => base,
                            }
                        })
                        .filter(|w| !w.is_empty())
                    })
                    .collect()
            })
            .collect();
        Ok(SchedulingProblem {
            spec,
            tasks,
            followers,
            windows,
        })
    }

    /// Sensing configuration.
    #[inline]
    pub fn spec(&self) -> &SensingSpec {
        &self.spec
    }

    /// Capture tasks.
    #[inline]
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Follower states.
    #[inline]
    pub fn followers(&self) -> &[FollowerState] {
        &self.followers
    }

    /// Visibility window of task `j` from follower `f`, or `None` when
    /// the task is out of reach.
    #[inline]
    pub fn window(&self, f: usize, j: usize) -> Option<TimeWindow> {
        self.windows[f][j]
    }

    /// Pointing offset from nadir for follower `f` capturing task `j`
    /// at time `t`: `(cross, along_target − along_subsatellite)`.
    pub fn capture_offset(&self, f: usize, j: usize, t_s: f64) -> (f64, f64) {
        let sat = self.followers[f].along_at(t_s, self.spec.ground_speed_m_s);
        (
            self.tasks[j].point.cross_m,
            self.tasks[j].point.along_m - sat,
        )
    }

    /// Exact rotation between two pointing offsets (paper Eq. 1).
    pub fn rotation_between(&self, u1: (f64, f64), u2: (f64, f64)) -> f64 {
        crate::pointing::rotation_rad(
            &GroundPoint::new(u1.0, u1.1),
            0.0,
            &GroundPoint::new(u2.0, u2.1),
            0.0,
            self.spec.altitude_m,
        )
    }

    /// Earliest feasible capture time of task `j` by follower `f`
    /// departing from pointing `from_offset` at time `from_t`, or `None`
    /// when no time in the window works. Solved by fixed-point iteration
    /// on `t = from_t + slew_time(rotation(from, target@t))`, which
    /// converges because the pointing offset changes slower than the
    /// slew (contraction for rates ≥ 1 °/s; see DESIGN.md).
    pub fn earliest_capture(
        &self,
        f: usize,
        j: usize,
        from_t: f64,
        from_offset: (f64, f64),
    ) -> Option<f64> {
        let w = self.windows[f][j]?;
        let mut t = w.start_s.max(from_t);
        for _ in 0..100 {
            if t > w.end_s + 1e-9 {
                return None;
            }
            let u2 = self.capture_offset(f, j, t);
            let rot = self.rotation_between(from_offset, u2);
            let need = self.spec.adacs.min_slew_time_s(rot);
            // Accept as soon as the slew fits in the available interval.
            if from_t + need <= t + 1e-12 {
                return Some(t);
            }
            // Otherwise push the candidate time to the requirement; the
            // iteration contracts because pointing drifts slower than the
            // slew catches up (see module docs).
            t = from_t + need;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SensingSpec {
        SensingSpec::paper_default()
    }

    #[test]
    fn windows_respect_availability() {
        let mut f = FollowerState::at_start(-100_000.0);
        f.available_from_s = 1_000.0;
        let p = SchedulingProblem::new(spec(), vec![TaskSpec::new(0.0, 50_000.0, 1.0)], vec![f])
            .unwrap();
        // Window would end ~ (50km + 92km + 100km)/7.1km/s ≈ 34 s; with
        // availability at 1000 s the window is gone.
        assert!(p.window(0, 0).is_none());
    }

    #[test]
    fn out_of_cone_tasks_have_no_window() {
        let p = SchedulingProblem::new(
            spec(),
            vec![TaskSpec::new(95_000.0, 50_000.0, 1.0)],
            vec![FollowerState::at_start(-100_000.0)],
        )
        .unwrap();
        assert!(p.window(0, 0).is_none());
    }

    #[test]
    fn earliest_capture_is_within_window_and_feasible() {
        let p = SchedulingProblem::new(
            spec(),
            vec![TaskSpec::new(30_000.0, 60_000.0, 1.0)],
            vec![FollowerState::at_start(-100_000.0)],
        )
        .unwrap();
        let t = p.earliest_capture(0, 0, 0.0, (0.0, 0.0)).unwrap();
        let w = p.window(0, 0).unwrap();
        assert!(w.contains(t), "t {t} not in [{}, {}]", w.start_s, w.end_s);
        let u = p.capture_offset(0, 0, t);
        let rot = p.rotation_between((0.0, 0.0), u);
        assert!(p.spec().adacs.can_rotate(rot, t - 0.0));
    }

    #[test]
    fn earliest_capture_none_when_window_passed() {
        let p = SchedulingProblem::new(
            spec(),
            vec![TaskSpec::new(0.0, 50_000.0, 1.0)],
            vec![FollowerState::at_start(-100_000.0)],
        )
        .unwrap();
        let w = p.window(0, 0).unwrap();
        assert!(p
            .earliest_capture(0, 0, w.end_s + 100.0, (0.0, 0.0))
            .is_none());
    }

    #[test]
    fn capture_offset_tracks_satellite_motion() {
        let p = SchedulingProblem::new(
            spec(),
            vec![TaskSpec::new(10_000.0, 0.0, 1.0)],
            vec![FollowerState::at_start(0.0)],
        )
        .unwrap();
        let u0 = p.capture_offset(0, 0, 0.0);
        let u1 = p.capture_offset(0, 0, 1.0);
        assert_eq!(u0.0, u1.0); // cross-track fixed
        let drift = u0.1 - u1.1;
        assert!((drift - p.spec().ground_speed_m_s).abs() < 1e-9);
    }

    #[test]
    fn rejects_nan_values() {
        assert!(SchedulingProblem::new(
            spec(),
            vec![TaskSpec::new(0.0, 0.0, f64::NAN)],
            vec![FollowerState::at_start(0.0)],
        )
        .is_err());
    }
}
