//! Degraded-mode scheduling: budgeted ILP with greedy fallback,
//! post-validation, and mid-pass failure repair.
//!
//! The paper's evaluation assumes a healthy constellation; a deployed
//! system does not get that luxury. [`ResilientScheduler`] wraps the
//! exact [`IlpScheduler`] with three safety layers:
//!
//! 1. **A per-horizon time budget.** Each scheduling horizon (one
//!    leader frame) gets a hard wall-clock budget, plumbed into the
//!    ILP solver's deadline machinery. A horizon that blows the budget
//!    degrades to the greedy baseline instead of stalling the pass.
//! 2. **Post-validation.** Every schedule — ILP or greedy — is checked
//!    against the paper's constraints C1–C3 by [`validate_schedule`]
//!    before it is returned. An unvalidatable schedule is never
//!    handed to the caller.
//! 3. **Repair.** When a follower fails mid-pass,
//!    [`ResilientScheduler::repair`] truncates its sequence at the
//!    outage onset and re-plans the dropped targets onto the surviving
//!    followers, appending only captures that are still feasible.
//!
//! The [`ScheduleOutcome`] records which solver actually produced each
//! horizon and why any fallback happened, so experiment harnesses can
//! report fallback rates rather than silently absorbing them.

use super::ilp::IlpRunStats;
use super::{Capture, GreedyScheduler, IlpScheduler, Schedule, Scheduler, SchedulingProblem};
use crate::pointing::off_nadir_rad;
use crate::CoreError;
use std::collections::BTreeSet;
use std::time::Duration;

/// Validates `schedule` against `problem`'s constraints:
///
/// * capture times lie in each task's visibility window (C2: the
///   window *is* the off-nadir constraint, re-verified directly from
///   raw geometry);
/// * consecutive captures satisfy the actuation constraint C1,
///   including the slew from the follower's initial pointing;
/// * each task is captured at most once across all followers (C3's
///   capture-once coupling);
/// * sequences are time-ordered and start after availability;
/// * the reported total value matches the captured tasks.
///
/// # Errors
///
/// Returns [`CoreError::ScheduleViolation`] describing the first
/// violated condition.
pub fn validate_schedule(
    problem: &SchedulingProblem,
    schedule: &Schedule,
) -> Result<(), CoreError> {
    let spec = problem.spec();
    if schedule.sequences.len() != problem.followers().len() {
        return Err(CoreError::ScheduleViolation {
            description: format!(
                "schedule has {} sequences for {} followers",
                schedule.sequences.len(),
                problem.followers().len()
            ),
        });
    }
    let mut seen = BTreeSet::new();
    for (f, seq) in schedule.sequences.iter().enumerate() {
        let follower = &problem.followers()[f];
        let mut prev_t = follower.available_from_s;
        let mut prev_u = follower.pointing_offset;
        for (k, cap) in seq.iter().enumerate() {
            if cap.task >= problem.tasks().len() {
                return Err(CoreError::ScheduleViolation {
                    description: format!("capture references task {}", cap.task),
                });
            }
            if !seen.insert(cap.task) {
                return Err(CoreError::ScheduleViolation {
                    description: format!("task {} captured twice", cap.task),
                });
            }
            if cap.time_s < prev_t - 1e-9 {
                return Err(CoreError::ScheduleViolation {
                    description: format!(
                        "follower {f} capture {k} at {} precedes {}",
                        cap.time_s, prev_t
                    ),
                });
            }
            let w = problem
                .window(f, cap.task)
                .ok_or_else(|| CoreError::ScheduleViolation {
                    description: format!("task {} invisible to follower {f}", cap.task),
                })?;
            if !w.contains(cap.time_s) {
                return Err(CoreError::ScheduleViolation {
                    description: format!(
                        "capture of task {} at {} outside window [{}, {}]",
                        cap.task, cap.time_s, w.start_s, w.end_s
                    ),
                });
            }
            // C2 re-verified from raw geometry.
            let sat = follower.along_at(cap.time_s, spec.ground_speed_m_s);
            let angle = off_nadir_rad(&problem.tasks()[cap.task].point, sat, spec.altitude_m);
            if angle > spec.theta_max_rad + 1e-6 {
                return Err(CoreError::ScheduleViolation {
                    description: format!(
                        "off-nadir {:.4} rad exceeds max {:.4}",
                        angle, spec.theta_max_rad
                    ),
                });
            }
            // C1 against the previous configuration.
            let u = problem.capture_offset(f, cap.task, cap.time_s);
            let rot = problem.rotation_between(prev_u, u);
            if !spec.adacs.can_rotate(rot, cap.time_s - prev_t) {
                return Err(CoreError::ScheduleViolation {
                    description: format!(
                        "follower {f}: rotation {:.4} rad in {:.2} s violates C1",
                        rot,
                        cap.time_s - prev_t
                    ),
                });
            }
            prev_t = cap.time_s;
            prev_u = u;
        }
    }
    // Total value consistency.
    let value: f64 = seen.iter().map(|&j| problem.tasks()[j].value).sum();
    if (value - schedule.total_value).abs() > 1e-6 * (1.0 + value.abs()) {
        return Err(CoreError::ScheduleViolation {
            description: format!(
                "reported value {} != recomputed {}",
                schedule.total_value, value
            ),
        });
    }
    Ok(())
}

/// Which solver produced a horizon's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverChoice {
    /// The exact ILP solved cleanly within budget.
    Ilp,
    /// The greedy baseline — either as an explicit fallback or because
    /// it dominated a degraded ILP solution.
    Greedy,
}

/// Why a horizon fell back from the ILP to greedy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FallbackReason {
    /// The ILP hit its wall-clock budget on at least one subproblem.
    Deadline,
    /// The ILP hit the simplex iteration cap on at least one
    /// subproblem (degenerate instance).
    IterationLimit,
    /// The ILP solved but the cheap greedy baseline scored higher
    /// (coarse slot discretization on a large instance).
    GreedyDominated,
    /// The ILP returned an unrecoverable solver error (message kept
    /// for diagnosis).
    SolverError(String),
    /// The ILP's schedule failed post-validation (message kept for
    /// diagnosis). This indicates a solver bug; the greedy result is
    /// substituted and re-validated.
    ValidationFailed(String),
}

/// The result of one [`ResilientScheduler::schedule_with_outcome`]
/// call: the (always validated) schedule plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// The validated schedule.
    pub schedule: Schedule,
    /// Which solver produced it.
    pub solver: SolverChoice,
    /// Why the ILP was abandoned, when it was.
    pub fallback: Option<FallbackReason>,
    /// Raw ILP diagnostics, when the ILP ran at all.
    pub ilp_stats: Option<IlpRunStats>,
}

/// The result of one [`ResilientScheduler::repair`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The repaired, validated schedule.
    pub schedule: Schedule,
    /// Tasks dropped from failed followers' sequences.
    pub dropped_tasks: usize,
    /// Of those, tasks successfully re-planned onto survivors.
    pub reassigned_tasks: usize,
}

/// Budgeted, validating, repairing wrapper around [`IlpScheduler`].
/// See the module-level docs for the three safety layers.
///
/// # Example
///
/// ```
/// use eagleeye_core::schedule::{
///     FollowerState, ResilientScheduler, SchedulingProblem, SolverChoice, TaskSpec,
/// };
/// use eagleeye_core::SensingSpec;
///
/// let p = SchedulingProblem::new(
///     SensingSpec::paper_default(),
///     vec![TaskSpec::new(0.0, 40_000.0, 1.0)],
///     vec![FollowerState::at_start(-100_000.0)],
/// )?;
/// let outcome = ResilientScheduler::default().schedule_with_outcome(&p)?;
/// assert_eq!(outcome.solver, SolverChoice::Ilp);
/// assert_eq!(outcome.schedule.captured_count(), 1);
/// # Ok::<(), eagleeye_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientScheduler {
    /// The wrapped exact scheduler (its `time_limit` is overridden by
    /// `horizon_budget`).
    pub ilp: IlpScheduler,
    /// Hard wall-clock budget per scheduling horizon.
    pub horizon_budget: Duration,
}

impl Default for ResilientScheduler {
    fn default() -> Self {
        ResilientScheduler {
            ilp: IlpScheduler::default(),
            horizon_budget: Duration::from_secs(2),
        }
    }
}

impl ResilientScheduler {
    /// A resilient scheduler with the given per-horizon budget.
    pub fn with_budget(horizon_budget: Duration) -> Self {
        ResilientScheduler {
            horizon_budget,
            ..ResilientScheduler::default()
        }
    }

    /// Schedules `problem` within the horizon budget and reports the
    /// outcome. The returned schedule is always validated against
    /// C1–C3; the outcome records which solver produced it and why
    /// any fallback happened.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ScheduleViolation`] only if *both* the ILP
    /// and the greedy fallback produce unvalidatable schedules (a bug,
    /// not an operating condition), or [`CoreError::Solver`] if the
    /// greedy fallback itself errors.
    pub fn schedule_with_outcome(
        &self,
        problem: &SchedulingProblem,
    ) -> Result<ScheduleOutcome, CoreError> {
        let ilp = IlpScheduler {
            time_limit: self.horizon_budget,
            ..self.ilp.clone()
        };
        match ilp.schedule_with_stats(problem) {
            Ok((schedule, stats)) => {
                let fallback = if stats.deadline_hits > 0 {
                    Some(FallbackReason::Deadline)
                } else if stats.iteration_limit_hits > 0 {
                    Some(FallbackReason::IterationLimit)
                } else if stats.greedy_dominated {
                    Some(FallbackReason::GreedyDominated)
                } else {
                    None
                };
                match validate_schedule(problem, &schedule) {
                    Ok(()) => Ok(ScheduleOutcome {
                        schedule,
                        solver: if fallback.is_some() {
                            SolverChoice::Greedy
                        } else {
                            SolverChoice::Ilp
                        },
                        fallback,
                        ilp_stats: Some(stats),
                    }),
                    Err(e) => self.greedy_fallback(
                        problem,
                        FallbackReason::ValidationFailed(e.to_string()),
                        Some(stats),
                    ),
                }
            }
            Err(e) => {
                self.greedy_fallback(problem, FallbackReason::SolverError(e.to_string()), None)
            }
        }
    }

    fn greedy_fallback(
        &self,
        problem: &SchedulingProblem,
        reason: FallbackReason,
        stats: Option<IlpRunStats>,
    ) -> Result<ScheduleOutcome, CoreError> {
        let schedule = GreedyScheduler.schedule(problem)?;
        validate_schedule(problem, &schedule)?;
        Ok(ScheduleOutcome {
            schedule,
            solver: SolverChoice::Greedy,
            fallback: Some(reason),
            ilp_stats: stats,
        })
    }

    /// Repairs `schedule` after mid-pass follower failures: for each
    /// `(follower, onset_s)` in `failures`, captures at or after the
    /// onset are dropped, and the dropped tasks are greedily re-planned
    /// onto surviving followers — appended after each survivor's last
    /// planned capture, no earlier than the onset at which the loss
    /// became known. The repaired schedule is re-validated before it
    /// is returned.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ScheduleViolation`] if the repaired
    /// schedule fails validation (a bug, not an operating condition).
    pub fn repair(
        &self,
        problem: &SchedulingProblem,
        schedule: &Schedule,
        failures: &[(usize, f64)],
    ) -> Result<RepairOutcome, CoreError> {
        let mut repaired = schedule.clone();
        let failed: BTreeSet<usize> = failures.iter().map(|&(f, _)| f).collect();

        // Truncate failed followers and collect what they drop.
        let mut dropped: Vec<(usize, f64)> = Vec::new(); // (task, known-at time)
        for &(f, onset_s) in failures {
            if f >= repaired.sequences.len() {
                continue;
            }
            let seq = std::mem::take(&mut repaired.sequences[f]);
            let (kept, lost): (Vec<Capture>, Vec<Capture>) =
                seq.into_iter().partition(|c| c.time_s < onset_s);
            dropped.extend(lost.iter().map(|c| (c.task, onset_s)));
            repaired.sequences[f] = kept;
        }
        let dropped_tasks = dropped.len();

        // Survivor cursors pick up after their last planned capture.
        let mut cursors: Vec<(f64, (f64, f64))> = problem
            .followers()
            .iter()
            .enumerate()
            .map(|(f, st)| match repaired.sequences[f].last() {
                Some(c) => (c.time_s, problem.capture_offset(f, c.task, c.time_s)),
                None => (st.available_from_s, st.pointing_offset),
            })
            .collect();

        // Greedy re-planning: repeatedly place the globally earliest
        // still-feasible (survivor, dropped task) pair.
        let mut reassigned = 0usize;
        let mut remaining = dropped;
        while !remaining.is_empty() {
            let mut best: Option<(usize, usize, f64)> = None; // (f, idx, t)
            for (f, cursor) in cursors.iter().enumerate() {
                if failed.contains(&f) {
                    continue;
                }
                for (idx, &(task, known_at)) in remaining.iter().enumerate() {
                    let from_t = cursor.0.max(known_at);
                    if let Some(t) = problem.earliest_capture(f, task, from_t, cursor.1) {
                        match best {
                            Some((_, _, bt)) if bt <= t => {}
                            _ => best = Some((f, idx, t)),
                        }
                    }
                }
            }
            let Some((f, idx, t)) = best else { break };
            let (task, _) = remaining.swap_remove(idx);
            repaired.sequences[f].push(Capture { task, time_s: t });
            cursors[f] = (t, problem.capture_offset(f, task, t));
            reassigned += 1;
        }

        repaired.total_value = repaired
            .captured_tasks()
            .iter()
            .map(|&j| problem.tasks()[j].value)
            .sum();
        validate_schedule(problem, &repaired)?;
        Ok(RepairOutcome {
            schedule: repaired,
            dropped_tasks,
            reassigned_tasks: reassigned,
        })
    }
}

impl Scheduler for ResilientScheduler {
    fn schedule(&self, problem: &SchedulingProblem) -> Result<Schedule, CoreError> {
        self.schedule_with_outcome(problem).map(|o| o.schedule)
    }

    fn name(&self) -> &'static str {
        "resilient"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FollowerState, TaskSpec};
    use crate::SensingSpec;

    fn problem(tasks: Vec<TaskSpec>, followers: Vec<FollowerState>) -> SchedulingProblem {
        SchedulingProblem::new(SensingSpec::paper_default(), tasks, followers).unwrap()
    }

    fn spread_tasks(n: usize) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| {
                TaskSpec::new(
                    ((i * 37) % 160) as f64 * 1_000.0 - 80_000.0,
                    20_000.0 + ((i * 13) % 90) as f64 * 1_500.0,
                    1.0 + (i % 3) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn clean_solve_reports_ilp() {
        let p = problem(spread_tasks(6), vec![FollowerState::at_start(-100_000.0)]);
        let o = ResilientScheduler::default()
            .schedule_with_outcome(&p)
            .unwrap();
        assert_eq!(o.solver, SolverChoice::Ilp);
        assert!(o.fallback.is_none());
        assert!(o.ilp_stats.unwrap().clean());
        validate_schedule(&p, &o.schedule).unwrap();
    }

    #[test]
    fn zero_budget_falls_back_to_greedy_with_deadline_reason() {
        let p = problem(
            spread_tasks(20),
            vec![
                FollowerState::at_start(-100_000.0),
                FollowerState::at_start(-120_000.0),
            ],
        );
        let rs = ResilientScheduler::with_budget(Duration::ZERO);
        let o = rs.schedule_with_outcome(&p).unwrap();
        assert_eq!(o.solver, SolverChoice::Greedy);
        assert!(
            matches!(o.fallback, Some(FallbackReason::Deadline)),
            "expected deadline fallback, got {:?}",
            o.fallback
        );
        // The fallback schedule still captures work and still validates.
        validate_schedule(&p, &o.schedule).unwrap();
        assert!(o.schedule.captured_count() > 0);
    }

    #[test]
    fn outcome_schedule_matches_trait_schedule() {
        let p = problem(spread_tasks(8), vec![FollowerState::at_start(-100_000.0)]);
        let rs = ResilientScheduler::default();
        let via_outcome = rs.schedule_with_outcome(&p).unwrap().schedule;
        let via_trait = rs.schedule(&p).unwrap();
        assert_eq!(via_outcome, via_trait);
        assert_eq!(rs.name(), "resilient");
    }

    #[test]
    fn repair_reassigns_dropped_tasks_to_survivors() {
        // Well-spaced tasks two followers can split; fail follower 0
        // before its first capture and demand survivors pick up the load.
        let tasks: Vec<TaskSpec> = (0..6)
            .map(|i| TaskSpec::new(0.0, 30_000.0 + i as f64 * 25_000.0, 1.0))
            .collect();
        let p = problem(
            tasks,
            vec![
                FollowerState::at_start(-100_000.0),
                FollowerState::at_start(-130_000.0),
            ],
        );
        let rs = ResilientScheduler::default();
        let o = rs.schedule_with_outcome(&p).unwrap();
        let before = o.schedule.captured_count();
        assert!(before > 0);
        let f0_caps = o.schedule.sequences[0].len();
        assert!(f0_caps > 0, "test premise: follower 0 does work");

        let repaired = rs.repair(&p, &o.schedule, &[(0, 0.0)]).unwrap();
        assert!(repaired.schedule.sequences[0].is_empty());
        assert_eq!(repaired.dropped_tasks, f0_caps);
        assert!(
            repaired.reassigned_tasks > 0,
            "survivor should recover some tasks"
        );
        validate_schedule(&p, &repaired.schedule).unwrap();
    }

    #[test]
    fn repair_keeps_captures_before_onset() {
        let tasks: Vec<TaskSpec> = (0..4)
            .map(|i| TaskSpec::new(0.0, 30_000.0 + i as f64 * 30_000.0, 1.0))
            .collect();
        let p = problem(tasks, vec![FollowerState::at_start(-100_000.0)]);
        let rs = ResilientScheduler::default();
        let o = rs.schedule_with_outcome(&p).unwrap();
        let seq = &o.schedule.sequences[0];
        assert!(seq.len() >= 2);
        // Fail right after the first capture: it must survive the repair.
        let onset = seq[0].time_s + 0.1;
        let repaired = rs.repair(&p, &o.schedule, &[(0, onset)]).unwrap();
        assert_eq!(repaired.schedule.sequences[0].len(), 1);
        assert_eq!(repaired.schedule.sequences[0][0], seq[0]);
        // With no survivors nothing can be reassigned.
        assert_eq!(repaired.reassigned_tasks, 0);
        assert_eq!(repaired.dropped_tasks, seq.len() - 1);
        validate_schedule(&p, &repaired.schedule).unwrap();
    }

    #[test]
    fn repair_respects_onset_knowledge_time() {
        // Survivor re-plans only at/after the onset time.
        let tasks: Vec<TaskSpec> = (0..4)
            .map(|i| TaskSpec::new(0.0, 30_000.0 + i as f64 * 25_000.0, 1.0))
            .collect();
        let p = problem(
            tasks,
            vec![
                FollowerState::at_start(-100_000.0),
                FollowerState::at_start(-100_500.0),
            ],
        );
        let rs = ResilientScheduler::default();
        let o = rs.schedule_with_outcome(&p).unwrap();
        if o.schedule.sequences[0].is_empty() {
            return; // nothing to drop; vacuous instance
        }
        let onset = 5.0;
        let repaired = rs.repair(&p, &o.schedule, &[(0, onset)]).unwrap();
        // Any capture appended to follower 1 beyond its original plan
        // must be at or after the onset.
        let orig_len = o.schedule.sequences[1].len();
        for c in repaired.schedule.sequences[1].iter().skip(orig_len) {
            assert!(
                c.time_s >= onset,
                "reassigned capture at {} before onset",
                c.time_s
            );
        }
        validate_schedule(&p, &repaired.schedule).unwrap();
    }
}
