use super::graph::OpportunityGraph;
use super::{Capture, Schedule, Scheduler, SchedulingProblem};
use crate::CoreError;

/// Exact bitmask dynamic program over the opportunity graph — the test
/// oracle that certifies [`super::IlpScheduler`] optimality.
///
/// Single-follower only, and exponential in the task count (state =
/// `(captured set, last opportunity)`), so it is limited to small
/// instances (≤ [`DpScheduler::MAX_TASKS`] tasks). It evaluates pairwise
/// slew feasibility directly, with no arc-horizon approximation, so its
/// optimum is the exact optimum of the slot-discretized problem.
///
/// # Example
///
/// ```
/// use eagleeye_core::schedule::{DpScheduler, FollowerState, Scheduler, SchedulingProblem, TaskSpec};
/// use eagleeye_core::SensingSpec;
///
/// let p = SchedulingProblem::new(
///     SensingSpec::paper_default(),
///     vec![TaskSpec::new(0.0, 40_000.0, 1.0), TaskSpec::new(5_000.0, 80_000.0, 2.0)],
///     vec![FollowerState::at_start(-100_000.0)],
/// )?;
/// let s = DpScheduler::default().schedule(&p)?;
/// assert_eq!(s.captured_count(), 2);
/// # Ok::<(), eagleeye_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DpScheduler {
    /// Slots per window (0 = same auto rule as the ILP scheduler).
    pub slots_per_task: usize,
}

impl DpScheduler {
    /// Maximum task count the DP will accept.
    pub const MAX_TASKS: usize = 16;
}

impl Scheduler for DpScheduler {
    fn schedule(&self, problem: &SchedulingProblem) -> Result<Schedule, CoreError> {
        if problem.followers().len() != 1 {
            return Err(CoreError::InvalidParameter {
                name: "followers (DpScheduler is single-follower)",
                value: problem.followers().len() as f64,
            });
        }
        let n_tasks = problem.tasks().len();
        if n_tasks > Self::MAX_TASKS {
            return Err(CoreError::InvalidParameter {
                name: "tasks (DpScheduler limit)",
                value: n_tasks as f64,
            });
        }
        let mut schedule = Schedule::empty(1);
        if n_tasks == 0 {
            return Ok(schedule);
        }

        let slots = if self.slots_per_task > 0 {
            self.slots_per_task
        } else if n_tasks <= 30 {
            3
        } else {
            2
        };
        let graph = OpportunityGraph::build(problem, slots, None, &vec![false; n_tasks]);
        let nodes = &graph.nodes;
        if nodes.is_empty() {
            return Ok(schedule);
        }

        // Sort node indices by time; DP proceeds in time order.
        let mut order: Vec<usize> = (0..nodes.len()).collect();
        order.sort_by(|&a, &b| nodes[a].time_s.total_cmp(&nodes[b].time_s));

        let n_masks = 1usize << n_tasks;
        const NEG: f64 = f64::NEG_INFINITY;
        // dp[mask * nodes + last] = best value ending at `last` having
        // captured `mask`.
        let mut dp = vec![NEG; n_masks * nodes.len()];
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; n_masks * nodes.len()];

        let follower = &problem.followers()[0];
        // Initialize: first capture from the initial state.
        for &v in &order {
            let n = &nodes[v];
            let dt = n.time_s - follower.available_from_s;
            if dt < -1e-9 {
                continue;
            }
            let rot = problem.rotation_between(follower.pointing_offset, n.offset);
            if problem.spec().adacs.can_rotate(rot, dt) {
                let mask = 1usize << n.task;
                let idx = mask * nodes.len() + v;
                let val = problem.tasks()[n.task].value;
                if val > dp[idx] {
                    dp[idx] = val;
                }
            }
        }

        // Transitions in time order.
        for mask in 1..n_masks {
            for &u in &order {
                let idx_u = mask * nodes.len() + u;
                if dp[idx_u] == NEG {
                    continue;
                }
                for &v in &order {
                    let nv = &nodes[v];
                    if nv.time_s <= nodes[u].time_s {
                        continue;
                    }
                    if mask & (1 << nv.task) != 0 {
                        continue;
                    }
                    if !OpportunityGraph::pair_feasible(problem, &nodes[u], nv) {
                        continue;
                    }
                    let new_mask = mask | (1 << nv.task);
                    let idx_v = new_mask * nodes.len() + v;
                    let val = dp[idx_u] + problem.tasks()[nv.task].value;
                    if val > dp[idx_v] + 1e-15 {
                        dp[idx_v] = val;
                        parent[idx_v] = Some((mask, u));
                    }
                }
            }
        }

        // Find the best terminal state and reconstruct.
        let mut best = (0.0f64, None::<(usize, usize)>);
        for mask in 1..n_masks {
            for &v in &order {
                let idx = mask * nodes.len() + v;
                if dp[idx] > best.0 + 1e-15 {
                    best = (dp[idx], Some((mask, v)));
                }
            }
        }
        let mut seq = Vec::new();
        let mut cur = best.1;
        while let Some((mask, v)) = cur {
            let n = &nodes[v];
            seq.push(Capture {
                task: n.task,
                time_s: n.time_s,
            });
            cur = parent[mask * nodes.len() + v];
        }
        seq.reverse();
        schedule.sequences[0] = seq;
        schedule.total_value = best.0;
        Ok(schedule)
    }

    fn name(&self) -> &'static str {
        "dp-oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FollowerState, IlpScheduler, TaskSpec};
    use crate::SensingSpec;

    fn problem(tasks: Vec<TaskSpec>) -> SchedulingProblem {
        SchedulingProblem::new(
            SensingSpec::paper_default(),
            tasks,
            vec![FollowerState::at_start(-100_000.0)],
        )
        .unwrap()
    }

    #[test]
    fn rejects_multi_follower() {
        let p = SchedulingProblem::new(
            SensingSpec::paper_default(),
            vec![TaskSpec::new(0.0, 0.0, 1.0)],
            vec![FollowerState::at_start(0.0), FollowerState::at_start(-10.0)],
        )
        .unwrap();
        assert!(DpScheduler::default().schedule(&p).is_err());
    }

    #[test]
    fn rejects_oversized_instances() {
        let tasks: Vec<TaskSpec> = (0..20)
            .map(|i| TaskSpec::new(0.0, i as f64 * 1_000.0, 1.0))
            .collect();
        assert!(DpScheduler::default().schedule(&problem(tasks)).is_err());
    }

    #[test]
    fn dp_solution_validates() {
        let tasks: Vec<TaskSpec> = (0..6)
            .map(|i| {
                TaskSpec::new(
                    ((i * 31) % 120) as f64 * 1_000.0 - 60_000.0,
                    i as f64 * 16_000.0,
                    1.0,
                )
            })
            .collect();
        let p = problem(tasks);
        let s = DpScheduler::default().schedule(&p).unwrap();
        s.validate(&p).unwrap();
    }

    #[test]
    fn dp_matches_ilp_on_small_instances() {
        // The headline solver-certification test: the DP optimum over the
        // slot grid is a lower bound the ILP must reach; the ILP may
        // exceed it because its post-passes retime captures continuously.
        for seed in 0..8u64 {
            let tasks: Vec<TaskSpec> = (0..7)
                .map(|i| {
                    let r = (seed * 31 + i as u64 * 17) % 97;
                    TaskSpec::new(
                        (r as f64 - 48.0) * 1_700.0,
                        ((seed * 7 + i as u64 * 13) % 90) as f64 * 1_200.0,
                        1.0 + (r % 5) as f64 * 0.4,
                    )
                })
                .collect();
            let p = problem(tasks);
            let dp = DpScheduler { slots_per_task: 3 }.schedule(&p).unwrap();
            let ilp = IlpScheduler {
                slots_per_task: 3,
                ..IlpScheduler::default()
            }
            .schedule(&p)
            .unwrap();
            dp.validate(&p).unwrap();
            ilp.validate(&p).unwrap();
            assert!(
                ilp.total_value >= dp.total_value - 1e-6,
                "seed {seed}: ilp {} below dp bound {}",
                ilp.total_value,
                dp.total_value
            );
        }
    }
}
