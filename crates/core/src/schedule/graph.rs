//! The discretized opportunity graph underlying the ILP and DP
//! schedulers.
//!
//! Each (follower, task) visibility window is discretized into a small
//! number of capture *slots*. A directed arc between two slots of the
//! same follower means the ADACS can rotate between the two capture
//! configurations in the intervening time (constraint C1). Two
//! observations keep the graph small:
//!
//! * Any rotation between valid pointings is at most `2·θmax`, so any
//!   pair separated by more than `T_max = slew_time(2·θmax)` is
//!   unconditionally feasible. Direct arcs are only generated within
//!   `T_max`; longer gaps route through a per-follower **rest chain** —
//!   zero-value relay nodes at every slot time — which encodes "given
//!   enough time, point anywhere" with O(nodes) arcs instead of O(nodes²).
//! * Capture slots of the same task are never connected (capturing a
//!   task twice is worthless).

use super::SchedulingProblem;

/// One capture opportunity: follower `f` capturing task `j` at `t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OppNode {
    pub follower: usize,
    pub task: usize,
    pub time_s: f64,
    /// Pointing offset from nadir at capture time.
    pub offset: (f64, f64),
}

/// Endpoint of an arc in the per-follower opportunity graph. `Ord` so
/// constraint assembly can use ordered maps — ILP model construction
/// must be deterministic for reproducible schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) enum End {
    /// The follower's initial state.
    Source,
    /// Capture node (global index into `nodes`).
    Node(usize),
    /// Rest-chain relay of follower `f` at rest-time index `q`.
    Rest(usize, usize),
}

/// A feasibility arc.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Arc {
    pub follower: usize,
    pub from: End,
    pub to: End,
}

/// The assembled graph for one scheduling problem.
#[derive(Debug, Clone)]
pub(crate) struct OpportunityGraph {
    pub nodes: Vec<OppNode>,
    /// Sorted distinct slot times per follower (rest-chain times).
    pub rest_times: Vec<Vec<f64>>,
    pub arcs: Vec<Arc>,
}

impl OpportunityGraph {
    /// Builds the graph with `slots` capture slots per window, optionally
    /// restricted to a subset of followers (`None` = all).
    pub(crate) fn build(
        problem: &SchedulingProblem,
        slots: usize,
        followers: Option<&[usize]>,
        excluded_tasks: &[bool],
    ) -> OpportunityGraph {
        let spec = problem.spec();
        let slots = slots.max(1);
        let t_max = spec
            .adacs
            .min_slew_time_s(spec.max_pointing_separation_rad())
            + 1e-9;

        let follower_ids: Vec<usize> = match followers {
            Some(ids) => ids.to_vec(),
            None => (0..problem.followers().len()).collect(),
        };

        let mut nodes: Vec<OppNode> = Vec::new();
        let mut rest_times: Vec<Vec<f64>> = vec![Vec::new(); problem.followers().len()];
        for &f in &follower_ids {
            for (j, task) in problem.tasks().iter().enumerate() {
                let _ = task;
                if *excluded_tasks.get(j).unwrap_or(&false) {
                    continue;
                }
                let Some(w) = problem.window(f, j) else {
                    continue;
                };
                let times: Vec<f64> = if slots == 1 || w.duration_s() < 1e-9 {
                    vec![(w.start_s + w.end_s) / 2.0]
                } else {
                    (0..slots)
                        .map(|k| w.start_s + w.duration_s() * k as f64 / (slots - 1) as f64)
                        .collect()
                };
                for t in times {
                    nodes.push(OppNode {
                        follower: f,
                        task: j,
                        time_s: t,
                        offset: problem.capture_offset(f, j, t),
                    });
                }
            }
        }

        // Rest times = sorted distinct node times per follower.
        for (i, n) in nodes.iter().enumerate() {
            let _ = i;
            rest_times[n.follower].push(n.time_s);
        }
        for times in rest_times.iter_mut() {
            times.sort_by(|a, b| a.total_cmp(b));
            times.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        }

        // Per-follower node indices sorted by time for arc generation.
        let mut arcs = Vec::new();
        for &f in &follower_ids {
            let mut idx: Vec<usize> = (0..nodes.len())
                .filter(|&i| nodes[i].follower == f)
                .collect();
            idx.sort_by(|&a, &b| nodes[a].time_s.total_cmp(&nodes[b].time_s));
            let rests = &rest_times[f];
            let state = &problem.followers()[f];

            // Source arcs.
            for &v in &idx {
                let n = &nodes[v];
                let dt = n.time_s - state.available_from_s;
                if dt < -1e-9 {
                    continue;
                }
                let rot = problem.rotation_between(state.pointing_offset, n.offset);
                if spec.adacs.can_rotate(rot, dt) {
                    arcs.push(Arc {
                        follower: f,
                        from: End::Source,
                        to: End::Node(v),
                    });
                }
            }
            if let Some(q) = first_rest_at_or_after(rests, state.available_from_s + t_max) {
                arcs.push(Arc {
                    follower: f,
                    from: End::Source,
                    to: End::Rest(f, q),
                });
            }

            // Node-to-node arcs within the horizon; node-to-rest beyond.
            for (a_pos, &u) in idx.iter().enumerate() {
                let nu = &nodes[u];
                for &v in &idx[a_pos + 1..] {
                    let nv = &nodes[v];
                    let dt = nv.time_s - nu.time_s;
                    if dt <= 1e-9 {
                        continue; // strict time ordering breaks cycles
                    }
                    if dt > t_max {
                        break; // sorted: all further nodes route via rest
                    }
                    if nv.task == nu.task {
                        continue;
                    }
                    let rot = problem.rotation_between(nu.offset, nv.offset);
                    if spec.adacs.can_rotate(rot, dt) {
                        arcs.push(Arc {
                            follower: f,
                            from: End::Node(u),
                            to: End::Node(v),
                        });
                    }
                }
                if let Some(q) = first_rest_at_or_after(rests, nu.time_s + t_max) {
                    arcs.push(Arc {
                        follower: f,
                        from: End::Node(u),
                        to: End::Rest(f, q),
                    });
                }
            }

            // Rest chain and rest-to-node arcs.
            for q in 0..rests.len().saturating_sub(1) {
                arcs.push(Arc {
                    follower: f,
                    from: End::Rest(f, q),
                    to: End::Rest(f, q + 1),
                });
            }
            for &v in &idx {
                if let Some(q) = rest_index_at(rests, nodes[v].time_s) {
                    arcs.push(Arc {
                        follower: f,
                        from: End::Rest(f, q),
                        to: End::Node(v),
                    });
                }
            }
        }

        OpportunityGraph {
            nodes,
            rest_times,
            arcs,
        }
    }

    /// Direct pairwise feasibility between two capture nodes of the same
    /// follower (used by the DP oracle, which needs no rest chain).
    pub(crate) fn pair_feasible(problem: &SchedulingProblem, u: &OppNode, v: &OppNode) -> bool {
        debug_assert_eq!(u.follower, v.follower);
        let dt = v.time_s - u.time_s;
        if dt <= 1e-9 {
            return false;
        }
        let rot = problem.rotation_between(u.offset, v.offset);
        problem.spec().adacs.can_rotate(rot, dt)
    }
}

fn first_rest_at_or_after(rests: &[f64], t: f64) -> Option<usize> {
    rests.iter().position(|&r| r >= t - 1e-9)
}

fn rest_index_at(rests: &[f64], t: f64) -> Option<usize> {
    rests.iter().position(|&r| (r - t).abs() < 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FollowerState, TaskSpec};
    use crate::SensingSpec;

    fn problem(tasks: Vec<TaskSpec>, followers: Vec<FollowerState>) -> SchedulingProblem {
        SchedulingProblem::new(SensingSpec::paper_default(), tasks, followers).unwrap()
    }

    #[test]
    fn nodes_cover_visible_tasks_only() {
        let p = problem(
            vec![
                TaskSpec::new(0.0, 50_000.0, 1.0),
                TaskSpec::new(95_000.0, 50_000.0, 1.0), // beyond cone
            ],
            vec![FollowerState::at_start(-100_000.0)],
        );
        let g = OpportunityGraph::build(&p, 3, None, &[false, false]);
        assert!(g.nodes.iter().all(|n| n.task == 0));
        assert_eq!(g.nodes.len(), 3);
    }

    #[test]
    fn excluded_tasks_get_no_nodes() {
        let p = problem(
            vec![
                TaskSpec::new(0.0, 50_000.0, 1.0),
                TaskSpec::new(0.0, 60_000.0, 1.0),
            ],
            vec![FollowerState::at_start(-100_000.0)],
        );
        let g = OpportunityGraph::build(&p, 2, None, &[true, false]);
        assert!(g.nodes.iter().all(|n| n.task == 1));
    }

    #[test]
    fn slot_times_span_the_window() {
        let p = problem(
            vec![TaskSpec::new(20_000.0, 50_000.0, 1.0)],
            vec![FollowerState::at_start(-100_000.0)],
        );
        let g = OpportunityGraph::build(&p, 4, None, &[false]);
        let w = p.window(0, 0).unwrap();
        assert_eq!(g.nodes.len(), 4);
        assert!((g.nodes[0].time_s - w.start_s).abs() < 1e-9);
        assert!((g.nodes[3].time_s - w.end_s).abs() < 1e-9);
    }

    #[test]
    fn arcs_are_time_forward() {
        let p = problem(
            (0..6)
                .map(|i| TaskSpec::new(i as f64 * 8_000.0, 40_000.0 + i as f64 * 9_000.0, 1.0))
                .collect(),
            vec![FollowerState::at_start(-100_000.0)],
        );
        let g = OpportunityGraph::build(&p, 3, None, &[false; 6]);
        for a in &g.arcs {
            if let (End::Node(u), End::Node(v)) = (a.from, a.to) {
                assert!(g.nodes[v].time_s > g.nodes[u].time_s);
            }
        }
    }

    #[test]
    fn rest_chain_connects_distant_slots() {
        // Two tasks far apart in time: no direct arc (beyond t_max) but a
        // rest path must exist.
        let p = problem(
            vec![
                TaskSpec::new(0.0, 0.0, 1.0),
                TaskSpec::new(0.0, 400_000.0, 1.0),
            ],
            vec![FollowerState::at_start(-100_000.0)],
        );
        let g = OpportunityGraph::build(&p, 2, None, &[false, false]);
        let has_direct = g.arcs.iter().any(|a| {
            matches!((a.from, a.to), (End::Node(u), End::Node(v))
                if g.nodes[u].task == 0 && g.nodes[v].task == 1)
        });
        assert!(!has_direct, "400 km apart: beyond the direct horizon");
        let node_to_rest = g.arcs.iter().any(
            |a| matches!((a.from, a.to), (End::Node(u), End::Rest(..)) if g.nodes[u].task == 0),
        );
        let rest_to_node = g.arcs.iter().any(
            |a| matches!((a.from, a.to), (End::Rest(..), End::Node(v)) if g.nodes[v].task == 1),
        );
        assert!(node_to_rest && rest_to_node);
    }

    #[test]
    fn follower_restriction_limits_nodes() {
        let p = problem(
            vec![TaskSpec::new(0.0, 50_000.0, 1.0)],
            vec![
                FollowerState::at_start(-100_000.0),
                FollowerState::at_start(-120_000.0),
            ],
        );
        let g = OpportunityGraph::build(&p, 2, Some(&[1]), &[false]);
        assert!(g.nodes.iter().all(|n| n.follower == 1));
    }

    #[test]
    fn pair_feasibility_matches_adacs() {
        let p = problem(
            vec![
                TaskSpec::new(0.0, 30_000.0, 1.0),
                TaskSpec::new(0.0, 90_000.0, 1.0),
            ],
            vec![FollowerState::at_start(-100_000.0)],
        );
        let g = OpportunityGraph::build(&p, 2, None, &[false, false]);
        // First slot of task 0 to last slot of task 1: plenty of time.
        let u = g.nodes.iter().find(|n| n.task == 0).unwrap();
        let v = g
            .nodes
            .iter()
            .filter(|n| n.task == 1)
            .max_by(|a, b| a.time_s.partial_cmp(&b.time_s).unwrap())
            .unwrap();
        assert!(OpportunityGraph::pair_feasible(&p, u, v));
        // Reverse order: time runs backward, infeasible.
        assert!(!OpportunityGraph::pair_feasible(&p, v, u));
    }
}
