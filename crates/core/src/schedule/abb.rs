use super::{Capture, Schedule, Scheduler, SchedulingProblem};
use crate::CoreError;
use std::time::{Duration, Instant};

/// Reimplementation of the prior-work **anytime branch-and-bound**
/// scheduler (AB&B, Chu et al. 2017 — the paper's §2.3/§4.3 baseline).
///
/// AB&B searches the space of capture *sequences* directly: each search
/// node assigns one more (follower, target) pair at its earliest
/// feasible time, bounding with "current value + all remaining target
/// values". The search is anytime — it keeps the best incumbent and can
/// be stopped at a deadline — but the sequence space grows factorially,
/// so runtime explodes past ~19 targets (paper Fig. 12a), blowing the
/// 15 s frame deadline that the ILP formulation comfortably meets.
///
/// # Example
///
/// ```
/// use eagleeye_core::schedule::{AbbScheduler, FollowerState, Scheduler, SchedulingProblem, TaskSpec};
/// use eagleeye_core::SensingSpec;
/// use std::time::Duration;
///
/// let p = SchedulingProblem::new(
///     SensingSpec::paper_default(),
///     vec![TaskSpec::new(0.0, 40_000.0, 1.0)],
///     vec![FollowerState::at_start(-100_000.0)],
/// )?;
/// let s = AbbScheduler::new(Duration::from_secs(1)).schedule(&p)?;
/// assert_eq!(s.captured_count(), 1);
/// # Ok::<(), eagleeye_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbbScheduler {
    deadline: Duration,
}

impl AbbScheduler {
    /// Creates an AB&B scheduler with the given anytime deadline.
    pub fn new(deadline: Duration) -> Self {
        AbbScheduler { deadline }
    }

    /// The paper's frame deadline: 15 s.
    pub fn with_frame_deadline() -> Self {
        AbbScheduler {
            deadline: Duration::from_secs(15),
        }
    }
}

impl Default for AbbScheduler {
    fn default() -> Self {
        Self::with_frame_deadline()
    }
}

/// DFS nodes expanded between deadline checks. Querying the monotonic
/// clock at every node costs a syscall-ish `Instant::now()` in the
/// hottest loop of the search; at well under a microsecond per node, a
/// stride of 256 bounds deadline overshoot to a fraction of a
/// millisecond while removing ~99.6 % of the clock reads.
const DEADLINE_CHECK_STRIDE: u32 = 256;

struct SearchCtx<'a> {
    problem: &'a SchedulingProblem,
    deadline: Instant,
    best_value: f64,
    best: Vec<Vec<Capture>>,
    timed_out: bool,
    nodes_since_check: u32,
}

impl SearchCtx<'_> {
    fn dfs(
        &mut self,
        cursors: &mut Vec<(f64, (f64, f64))>,
        captured: &mut Vec<bool>,
        sequences: &mut Vec<Vec<Capture>>,
        value: f64,
        remaining_value: f64,
    ) {
        self.nodes_since_check += 1;
        if self.nodes_since_check >= DEADLINE_CHECK_STRIDE {
            self.nodes_since_check = 0;
            // eagleeye-lint: allow(clock): deadline enforcement is wall-clock by design; deadline runs are excluded from the determinism goldens
            if Instant::now() >= self.deadline {
                self.timed_out = true;
                return;
            }
        }
        if value > self.best_value + 1e-12 {
            self.best_value = value;
            self.best = sequences.clone();
        }
        // Bound: even capturing every remaining target cannot beat the
        // incumbent.
        if value + remaining_value <= self.best_value + 1e-12 {
            return;
        }

        // Children: every feasible (follower, target) next assignment,
        // ordered by earliest capture time.
        let mut children: Vec<(usize, usize, f64)> = Vec::new();
        for (f, cursor) in cursors.iter().enumerate() {
            for (j, taken) in captured.iter().enumerate() {
                if *taken {
                    continue;
                }
                if let Some(t) = self.problem.earliest_capture(f, j, cursor.0, cursor.1) {
                    children.push((f, j, t));
                }
            }
        }
        children.sort_by(|a, b| a.2.total_cmp(&b.2));

        for (f, j, t) in children {
            if self.timed_out {
                return;
            }
            let saved_cursor = cursors[f];
            cursors[f] = (t, self.problem.capture_offset(f, j, t));
            captured[j] = true;
            sequences[f].push(Capture { task: j, time_s: t });
            let tv = self.problem.tasks()[j].value;
            self.dfs(
                cursors,
                captured,
                sequences,
                value + tv,
                remaining_value - tv,
            );
            sequences[f].pop();
            captured[j] = false;
            cursors[f] = saved_cursor;
        }
    }
}

impl Scheduler for AbbScheduler {
    fn schedule(&self, problem: &SchedulingProblem) -> Result<Schedule, CoreError> {
        let n_followers = problem.followers().len();
        let n_tasks = problem.tasks().len();
        let mut schedule = Schedule::empty(n_followers);
        if n_followers == 0 || n_tasks == 0 {
            return Ok(schedule);
        }

        let mut ctx = SearchCtx {
            problem,
            // eagleeye-lint: allow(clock): anchoring the wall-clock deadline is the scheduler's time-budget contract
            deadline: Instant::now() + self.deadline,
            best_value: 0.0,
            best: vec![Vec::new(); n_followers],
            timed_out: false,
            nodes_since_check: 0,
        };
        let mut cursors: Vec<(f64, (f64, f64))> = problem
            .followers()
            .iter()
            .map(|f| (f.available_from_s, f.pointing_offset))
            .collect();
        let mut captured = vec![false; n_tasks];
        let mut sequences = vec![Vec::new(); n_followers];
        let total_value: f64 = problem.tasks().iter().map(|t| t.value).sum();
        ctx.dfs(
            &mut cursors,
            &mut captured,
            &mut sequences,
            0.0,
            total_value,
        );

        schedule.sequences = ctx.best;
        schedule.total_value = schedule
            .captured_tasks()
            .iter()
            .map(|&j| problem.tasks()[j].value)
            .sum();
        Ok(schedule)
    }

    fn name(&self) -> &'static str {
        "abb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FollowerState, GreedyScheduler, TaskSpec};
    use crate::SensingSpec;

    fn problem(tasks: Vec<TaskSpec>, followers: Vec<FollowerState>) -> SchedulingProblem {
        SchedulingProblem::new(SensingSpec::paper_default(), tasks, followers).unwrap()
    }

    fn spread_tasks(n: usize) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| {
                TaskSpec::new(
                    ((i * 41) % 160) as f64 * 1_000.0 - 80_000.0,
                    ((i * 17) % 100) as f64 * 1_050.0,
                    1.0 + (i % 5) as f64 * 0.3,
                )
            })
            .collect()
    }

    #[test]
    fn abb_schedules_validate() {
        let p = problem(spread_tasks(6), vec![FollowerState::at_start(-100_000.0)]);
        let s = AbbScheduler::new(Duration::from_secs(5))
            .schedule(&p)
            .unwrap();
        s.validate(&p).unwrap();
        assert!(s.captured_count() > 0);
    }

    #[test]
    fn abb_at_least_matches_greedy_given_time() {
        let p = problem(spread_tasks(7), vec![FollowerState::at_start(-100_000.0)]);
        let abb = AbbScheduler::new(Duration::from_secs(10))
            .schedule(&p)
            .unwrap();
        let greedy = GreedyScheduler.schedule(&p).unwrap();
        assert!(
            abb.total_value >= greedy.total_value - 1e-9,
            "abb {} < greedy {}",
            abb.total_value,
            greedy.total_value
        );
    }

    #[test]
    fn abb_respects_deadline_and_stays_anytime() {
        // Many targets with a tiny budget: must return quickly with some
        // (possibly poor) incumbent rather than hanging.
        let p = problem(spread_tasks(30), vec![FollowerState::at_start(-100_000.0)]);
        let sw = eagleeye_obs::Stopwatch::start();
        let s = AbbScheduler::new(Duration::from_millis(100))
            .schedule(&p)
            .unwrap();
        assert!(sw.elapsed() < Duration::from_secs(2));
        s.validate(&p).unwrap();
    }

    #[test]
    fn single_target_exactness() {
        let p = problem(
            vec![TaskSpec::new(5_000.0, 50_000.0, 4.0)],
            vec![FollowerState::at_start(-100_000.0)],
        );
        let s = AbbScheduler::new(Duration::from_secs(1))
            .schedule(&p)
            .unwrap();
        assert_eq!(s.captured_count(), 1);
        assert!((s.total_value - 4.0).abs() < 1e-9);
    }
}
