//! EagleEye: mixed-resolution leader-follower nanosatellite constellation
//! design for high-coverage, high-resolution sensing.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (ASPLOS'24). A **leader** satellite images a wide, low-resolution
//! swath and detects targets onboard; **follower** satellites trailing it
//! carry narrow, high-resolution cameras and execute capture schedules
//! the leader computes. The crate provides:
//!
//! * [`Camera`] — the swath/GSD trade-off (paper Fig. 2/4), with the
//!   paper's two operating points and a table of real cubesat cameras.
//! * [`Adacs`] + [`pointing`] — the actuation model: slew-rate-limited
//!   rotations with fixed per-maneuver overhead (paper §5.3:
//!   `MaxAng(t) = 3·(t − 0.67)` deg), off-nadir pointing geometry
//!   (paper Eq. 1–2), and per-target visibility windows.
//! * [`clustering`] — ILP rectangle-cover target clustering so one
//!   high-resolution image captures several nearby targets (paper §4.1),
//!   plus a greedy baseline.
//! * [`schedule`] — actuation-aware follower scheduling: the paper's
//!   ILP formulation (an opportunity-graph flow problem solved by
//!   `eagleeye-ilp`), the greedy nearest-target baseline, the AB&B
//!   prior-work baseline whose runtime explodes past ~19 targets
//!   (paper Fig. 12a), and an exact DP oracle used to certify the ILP.
//! * [`coverage`] — the end-to-end 24 h coverage evaluator across
//!   constellation configurations: Low-Res Only, High-Res Only, EagleEye
//!   leader-follower groups, and the Mix-Camera ablation (paper Fig. 5,
//!   9, 11, 13).
//! * [`lookahead`] — moving-target lookahead analysis (paper Fig. 10).
//!
//! # Quickstart
//!
//! ```
//! use eagleeye_core::schedule::{FollowerState, IlpScheduler, Scheduler, SchedulingProblem, TaskSpec};
//! use eagleeye_core::{Adacs, SensingSpec};
//!
//! // One follower, three clustered targets in a frame.
//! let spec = SensingSpec::paper_default();
//! let problem = SchedulingProblem::new(
//!     spec,
//!     vec![
//!         TaskSpec::new(0.0, 20_000.0, 1.0),
//!         TaskSpec::new(15_000.0, 45_000.0, 2.0),
//!         TaskSpec::new(-20_000.0, 70_000.0, 1.0),
//!     ],
//!     vec![FollowerState::at_start(-100_000.0)],
//! )?;
//! let schedule = IlpScheduler::default().schedule(&problem)?;
//! schedule.validate(&problem)?;
//! assert!(schedule.captured_count() >= 2);
//! # Ok::<(), eagleeye_core::CoreError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod actuation;
mod cameras;
pub mod clustering;
pub mod coverage;
mod error;
pub mod lookahead;
pub mod pointing;
pub mod schedule;
mod sensing;

pub use actuation::Adacs;
pub use cameras::{Camera, REAL_CUBESAT_CAMERAS};
pub use error::CoreError;
pub use sensing::SensingSpec;
