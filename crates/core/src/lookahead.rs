//! Moving-target lookahead analysis (paper §4.6, Fig. 10).
//!
//! A moving target detected by the leader must still be inside the
//! follower's high-resolution footprint when the follower arrives. With
//! satellite ground speed `V_sat`, target speed `V_target`, follower
//! swath `swath`, lookahead distance `D` (ground distance between the
//! leader's detection and the follower's capture), and slack fraction
//! `γ`, the constraint is
//!
//! ```text
//! (D / V_sat) · V_target ≤ γ · swath
//! ```
//!
//! so the maximum lookahead distance is `D_max = γ·swath·V_sat / V_target`.

use crate::CoreError;

/// Maximum lookahead distance (meters) for a target moving at
/// `target_speed_m_s`, with follower swath `swath_m`, satellite ground
/// speed `sat_speed_m_s`, and slack fraction `gamma`.
///
/// Returns infinity for a stationary target.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for non-positive speed,
/// swath, or a slack outside `(0, 1]`.
///
/// # Example
///
/// ```
/// use eagleeye_core::lookahead::max_lookahead_m;
///
/// // Paper Fig. 10 anchor points (500 km alt, 7.5 km/s, 10 km swath, γ=0.1):
/// let ship = max_lookahead_m(14.0, 10_000.0, 7_500.0, 0.1)?;
/// assert!((ship / 1000.0 - 535.7).abs() < 1.0); // ~500 km for a 50 km/h ship
/// let plane = max_lookahead_m(250.0, 10_000.0, 7_500.0, 0.1)?;
/// assert!((plane / 1000.0 - 30.0).abs() < 1.0); // ~28-30 km for a jet
/// # Ok::<(), eagleeye_core::CoreError>(())
/// ```
pub fn max_lookahead_m(
    target_speed_m_s: f64,
    swath_m: f64,
    sat_speed_m_s: f64,
    gamma: f64,
) -> Result<f64, CoreError> {
    if !(swath_m > 0.0) || !swath_m.is_finite() {
        return Err(CoreError::InvalidParameter {
            name: "swath_m",
            value: swath_m,
        });
    }
    if !(sat_speed_m_s > 0.0) || !sat_speed_m_s.is_finite() {
        return Err(CoreError::InvalidParameter {
            name: "sat_speed_m_s",
            value: sat_speed_m_s,
        });
    }
    if !(gamma > 0.0 && gamma <= 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "gamma",
            value: gamma,
        });
    }
    if !(target_speed_m_s >= 0.0) || !target_speed_m_s.is_finite() {
        return Err(CoreError::InvalidParameter {
            name: "target_speed_m_s",
            value: target_speed_m_s,
        });
    }
    // eagleeye-lint: allow(float-eq): exact-zero guard before division; epsilon would silently reclassify slow movers as static
    if target_speed_m_s == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(gamma * swath_m * sat_speed_m_s / target_speed_m_s)
}

/// True when a leader-follower separation of `lookahead_m` can track
/// targets up to `target_speed_m_s` (the feasibility check the paper's
/// 100 km separation passes for ships and planes alike).
pub fn separation_supports_speed(
    lookahead_m: f64,
    target_speed_m_s: f64,
    swath_m: f64,
    sat_speed_m_s: f64,
    gamma: f64,
) -> Result<bool, CoreError> {
    Ok(lookahead_m <= max_lookahead_m(target_speed_m_s, swath_m, sat_speed_m_s, gamma)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(max_lookahead_m(10.0, 0.0, 7_500.0, 0.1).is_err());
        assert!(max_lookahead_m(10.0, 10_000.0, -1.0, 0.1).is_err());
        assert!(max_lookahead_m(10.0, 10_000.0, 7_500.0, 0.0).is_err());
        assert!(max_lookahead_m(10.0, 10_000.0, 7_500.0, 1.5).is_err());
        assert!(max_lookahead_m(-1.0, 10_000.0, 7_500.0, 0.1).is_err());
    }

    #[test]
    fn stationary_targets_allow_infinite_lookahead() {
        assert_eq!(
            max_lookahead_m(0.0, 10_000.0, 7_500.0, 0.1).unwrap(),
            f64::INFINITY
        );
    }

    #[test]
    fn lookahead_is_inverse_in_speed() {
        let d1 = max_lookahead_m(50.0, 10_000.0, 7_500.0, 0.1).unwrap();
        let d2 = max_lookahead_m(100.0, 10_000.0, 7_500.0, 0.1).unwrap();
        assert!((d1 / d2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_hundred_km_separation_works_for_ships_not_checked_for_jets() {
        // The paper's 100 km separation supports ship speeds comfortably…
        assert!(separation_supports_speed(100_000.0, 14.0, 10_000.0, 7_500.0, 0.1).unwrap());
        // …but a 250 m/s jet bounds the lookahead to ~30 km.
        assert!(!separation_supports_speed(100_000.0, 250.0, 10_000.0, 7_500.0, 0.1).unwrap());
    }
}
