//! Cross-process shrink + replay coverage for composite generators:
//! the nested `(scenario, delta)` tuple shape the delta differential
//! suite generates. A failing property over that shape must (a) shrink
//! to a stable minimal counterexample with every irrelevant component
//! at its lower bound, and (b) reproduce that exact counterexample
//! when replayed via `EAGLEEYE_CHECK_SEED` — the workflow a developer
//! follows from a red CI log.

use eagleeye_check::{check_cases, f64_range, prop_assert, u64_range, usize_range};
use std::process::Command;

/// The deliberately failing property the orchestrator spawns: a nested
/// `((seed, groups, recall), (delta_kind, delta_param))` tuple failing
/// on a conjunction of two components. Gated on an env var so plain
/// `cargo test` runs it as a quiet no-op.
#[test]
fn composite_helper_property() {
    if std::env::var("EAGLEEYE_COMPOSITE_HELPER").is_err() {
        return;
    }
    check_cases(
        512,
        "composite_helper",
        (
            (u64_range(0, 1_000), usize_range(1, 8), f64_range(0.0, 1.0)),
            (usize_range(0, 6), f64_range(0.0, 1.0)),
        ),
        |&((_seed, groups, _recall), (kind, _param))| {
            prop_assert!(
                !(groups >= 3 && kind >= 2),
                "scenario with {groups} groups breaks under delta kind {kind}"
            );
            Ok(())
        },
    );
}

fn run_helper(seed: Option<&str>) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.args([
        "composite_helper_property",
        "--exact",
        "--nocapture",
        "--test-threads=1",
    ])
    .env("EAGLEEYE_COMPOSITE_HELPER", "1")
    .env_remove("EAGLEEYE_CHECK_SEED")
    .env_remove("EAGLEEYE_CHECK_CASES");
    if let Some(s) = seed {
        cmd.env("EAGLEEYE_CHECK_SEED", s);
    }
    let out = cmd.output().expect("spawn test binary");
    assert!(
        !out.status.success(),
        "the helper property must fail (seed {seed:?})"
    );
    format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    )
}

fn line_with<'a>(text: &'a str, marker: &str) -> &'a str {
    text.lines()
        .find(|l| l.contains(marker))
        .unwrap_or_else(|| panic!("no line containing {marker:?} in:\n{text}"))
        .trim()
}

#[test]
fn nested_tuple_failure_shrinks_minimally_and_replays_identically() {
    let first = run_helper(None);
    let counterexample = line_with(&first, "counterexample:").to_string();
    // The minimal counterexample is fully canonical: the load-bearing
    // components sit exactly on the failure boundary (3 groups, kind
    // 2) and everything else collapsed to its lower bound.
    assert!(
        counterexample.contains("((0, 3, 0.0), (2, 0.0))"),
        "counterexample did not shrink to the canonical minimum: {counterexample}"
    );

    let seed = line_with(&first, "EAGLEEYE_CHECK_SEED=")
        .split("EAGLEEYE_CHECK_SEED=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .expect("seed value after EAGLEEYE_CHECK_SEED=")
        .to_string();
    assert!(seed.starts_with("0x"), "seed {seed:?} is not 0x-hex");

    let replayed = run_helper(Some(&seed));
    assert_eq!(
        line_with(&replayed, "counterexample:"),
        counterexample,
        "replay produced a different minimal counterexample"
    );
    assert_eq!(
        line_with(&replayed, "error:"),
        line_with(&first, "error:"),
        "replay produced a different failure message"
    );
}
