//! Integration test for the replay workflow (DESIGN.md §9): a failing
//! property prints a `EAGLEEYE_CHECK_SEED=0x...` replay line, and
//! re-running with that seed set reproduces the identical minimal
//! counterexample — across *processes*, the way a developer actually
//! uses it (the in-process variant lives in the runner's unit tests).

use eagleeye_check::{check_cases, prop_assert, u64_range, vec_of};
use std::process::Command;

/// The deliberately failing property the orchestrator spawns. Gated on
/// an env var so plain `cargo test` runs it as a quiet no-op.
#[test]
fn replay_helper_property() {
    if std::env::var("EAGLEEYE_REPLAY_HELPER").is_err() {
        return;
    }
    check_cases(512, "replay_helper", vec_of(u64_range(0, 100), 1, 6), |v| {
        let sum: u64 = v.iter().sum();
        prop_assert!(sum < 50, "sum {sum} reached the bound");
        Ok(())
    });
}

fn run_helper(seed: Option<&str>) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.args([
        "replay_helper_property",
        "--exact",
        "--nocapture",
        "--test-threads=1",
    ])
    .env("EAGLEEYE_REPLAY_HELPER", "1")
    .env_remove("EAGLEEYE_CHECK_SEED")
    .env_remove("EAGLEEYE_CHECK_CASES");
    if let Some(s) = seed {
        cmd.env("EAGLEEYE_CHECK_SEED", s);
    }
    let out = cmd.output().expect("spawn test binary");
    assert!(
        !out.status.success(),
        "the helper property must fail (seed {seed:?})"
    );
    format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    )
}

fn line_with<'a>(text: &'a str, marker: &str) -> &'a str {
    text.lines()
        .find(|l| l.contains(marker))
        .unwrap_or_else(|| panic!("no line containing {marker:?} in:\n{text}"))
        .trim()
}

#[test]
fn replay_reproduces_the_identical_minimal_counterexample() {
    let first = run_helper(None);
    let counterexample = line_with(&first, "counterexample:").to_string();
    let error = line_with(&first, "error:").to_string();
    let seed = line_with(&first, "EAGLEEYE_CHECK_SEED=")
        .split("EAGLEEYE_CHECK_SEED=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .expect("seed value after EAGLEEYE_CHECK_SEED=")
        .to_string();
    assert!(seed.starts_with("0x"), "seed {seed:?} is not 0x-hex");

    let replayed = run_helper(Some(&seed));
    assert_eq!(
        line_with(&replayed, "counterexample:"),
        counterexample,
        "replay produced a different minimal counterexample"
    );
    assert_eq!(line_with(&replayed, "error:"), error);
}
