//! The property runner: seeded case loop, discard budget, failure
//! shrinking, and replayable-seed reporting.

use crate::shrink;
use crate::source::Source;
use crate::Gen;
use eagleeye_rng::{mix64, SplitMix64};
use std::fmt::Debug;

/// Default case count per property when neither the caller nor
/// `EAGLEEYE_CHECK_CASES` says otherwise.
pub const DEFAULT_CASES: u32 = 64;

/// Workspace-wide base seed all per-case seeds are forked from.
const BASE_SEED: u64 = 0x00EA_61EE_C11E_C4ED;

/// Why a property case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// The property's assertion failed with this message.
    Fail(String),
    /// A precondition did not hold ([`crate::prop_assume!`]); the case
    /// is discarded, not failed.
    Discard,
}

impl Failure {
    /// A [`Failure::Fail`] from anything string-like.
    pub fn fail(message: impl Into<String>) -> Failure {
        Failure::Fail(message.into())
    }
}

/// What a property returns per case: `Ok(())` to pass, or a
/// [`Failure`] (usually via the [`crate::prop_assert!`] family).
pub type PropResult = Result<(), Failure>;

/// Runs `prop` against [`DEFAULT_CASES`] generated cases (scaled by
/// `EAGLEEYE_CHECK_CASES`, replayed by `EAGLEEYE_CHECK_SEED`).
///
/// # Panics
///
/// Panics when a case fails — after shrinking, with the minimal
/// counterexample and a replayable seed in the message — or when the
/// discard budget is exhausted.
pub fn check<G>(name: &str, gen: G, prop: impl Fn(&G::Value) -> PropResult)
where
    G: Gen,
    G::Value: Debug,
{
    check_cases(DEFAULT_CASES, name, gen, prop);
}

/// [`check`] with an explicit case count (still scaled by
/// `EAGLEEYE_CHECK_CASES`, which takes precedence).
///
/// # Panics
///
/// Same conditions as [`check`].
pub fn check_cases<G>(cases: u32, name: &str, gen: G, prop: impl Fn(&G::Value) -> PropResult)
where
    G: Gen,
    G::Value: Debug,
{
    let cases = env_cases().unwrap_or(cases).max(1);
    run(RunPlan {
        name,
        cases,
        seed_override: env_seed(),
        gen,
        prop,
    });
}

struct RunPlan<'a, G, P> {
    name: &'a str,
    cases: u32,
    seed_override: Option<u64>,
    gen: G,
    prop: P,
}

/// Deterministic, platform-independent hash of the property name.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(h)
}

fn env_cases() -> Option<u32> {
    let raw = std::env::var("EAGLEEYE_CHECK_CASES").ok()?;
    match raw.trim().parse::<u32>() {
        Ok(n) if n > 0 => Some(n),
        _ => panic!("EAGLEEYE_CHECK_CASES must be a positive integer, got {raw:?}"),
    }
}

fn env_seed() -> Option<u64> {
    let raw = std::env::var("EAGLEEYE_CHECK_SEED").ok()?;
    let t = raw.trim();
    let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => t.parse::<u64>(),
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("EAGLEEYE_CHECK_SEED must be a u64 (decimal or 0x-hex), got {raw:?}"),
    }
}

fn run<G, P>(plan: RunPlan<'_, G, P>)
where
    G: Gen,
    G::Value: Debug,
    P: Fn(&G::Value) -> PropResult,
{
    // Explicit replay: run exactly the requested case.
    if let Some(seed) = plan.seed_override {
        run_one(&plan, seed, 0, 1);
        return;
    }

    let root = SplitMix64::new(BASE_SEED).fork(name_hash(plan.name));
    let max_discards = (plan.cases as u64).saturating_mul(20).max(400);
    let mut passed: u32 = 0;
    let mut attempt: u64 = 0;
    while passed < plan.cases {
        if attempt.saturating_sub(u64::from(passed)) > max_discards {
            panic!(
                "[eagleeye-check] property '{}' gave up: {} of {} cases passed \
                 before exhausting the discard budget ({max_discards}); weaken the \
                 filter/prop_assume preconditions or widen the generator",
                plan.name, passed, plan.cases
            );
        }
        let case_seed = root.fork(attempt).state();
        if run_one(&plan, case_seed, passed, plan.cases) {
            passed += 1;
        }
        attempt += 1;
    }
}

/// Runs one case from `case_seed`. Returns `true` when the case
/// passed, `false` when it was discarded; panics (after shrinking)
/// when it failed.
fn run_one<G, P>(plan: &RunPlan<'_, G, P>, case_seed: u64, case_index: u32, cases: u32) -> bool
where
    G: Gen,
    G::Value: Debug,
    P: Fn(&G::Value) -> PropResult,
{
    let mut src = Source::live(SplitMix64::new(case_seed));
    let value = plan.gen.generate(&mut src);
    if src.is_invalid() {
        return false;
    }
    match (plan.prop)(&value) {
        Ok(()) => true,
        Err(Failure::Discard) => false,
        Err(Failure::Fail(message)) => {
            let minimized =
                shrink::minimize(&plan.gen, &plan.prop, src.into_data(), value, message);
            panic!(
                "[eagleeye-check] property '{name}' failed at case {case}/{cases}\
                 \n  counterexample: {value:?}\
                 \n  error: {error}\
                 \n  ({steps} shrink steps from the original failure)\
                 \n  replay: EAGLEEYE_CHECK_SEED={seed:#018x} cargo test -q {name}",
                name = plan.name,
                case = case_index + 1,
                value = minimized.value,
                error = minimized.message,
                steps = minimized.steps,
                seed = case_seed,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{any_bool, f64_range, usize_range, vec_of};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Runs a plan without consulting the environment, so tests stay
    /// independent of ambient `EAGLEEYE_CHECK_*` variables.
    fn run_isolated<G>(
        cases: u32,
        seed_override: Option<u64>,
        name: &str,
        gen: G,
        prop: impl Fn(&G::Value) -> PropResult,
    ) where
        G: Gen,
        G::Value: Debug,
    {
        run(RunPlan {
            name,
            cases,
            seed_override,
            gen,
            prop,
        });
    }

    #[test]
    fn passing_property_runs_quietly() {
        run_isolated(128, None, "tautology", usize_range(0, 10), |&n| {
            if n < 10 {
                Ok(())
            } else {
                Err(Failure::fail("impossible"))
            }
        });
    }

    #[test]
    fn failing_property_reports_seed_and_minimal_counterexample() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_isolated(
                256,
                None,
                "all_bools_false",
                (any_bool(), usize_range(0, 5)),
                |&(b, _)| {
                    if b {
                        Err(Failure::fail("got true"))
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        let msg = *result
            .unwrap_err()
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("property 'all_bools_false' failed"), "{msg}");
        assert!(msg.contains("EAGLEEYE_CHECK_SEED=0x"), "{msg}");
        assert!(msg.contains("got true"), "{msg}");
        // The usize component shrank to its minimum.
        assert!(msg.contains("(true, 0)"), "{msg}");
    }

    #[test]
    fn reported_seed_replays_the_same_failure() {
        let prop = |v: &Vec<usize>| -> PropResult {
            if v.iter().sum::<usize>() < 40 {
                Ok(())
            } else {
                Err(Failure::fail(format!("sum {}", v.iter().sum::<usize>())))
            }
        };
        let gen = || vec_of(usize_range(0, 30), 1, 8);
        let msg_of = |seed_override: Option<u64>| -> String {
            let r = catch_unwind(AssertUnwindSafe(|| {
                run_isolated(512, seed_override, "bounded_sum", gen(), prop);
            }));
            *r.unwrap_err().downcast::<String>().expect("string panic")
        };
        let first = msg_of(None);
        let seed_hex = first
            .split("EAGLEEYE_CHECK_SEED=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .expect("seed in message");
        let seed = u64::from_str_radix(seed_hex.trim_start_matches("0x"), 16).expect("hex seed");
        let replayed = msg_of(Some(seed));
        // Same minimal counterexample and message, case renumbered.
        let tail = |m: &str| m.split("counterexample:").nth(1).unwrap().to_string();
        let (a, b) = (tail(&first), tail(&replayed));
        let strip_case = |m: &str| m.replace("case 1/1", "").replace("failed at", "");
        assert_eq!(strip_case(&a), strip_case(&b));
    }

    #[test]
    fn discards_do_not_count_as_passes() {
        use std::cell::Cell;
        let executed = Cell::new(0u32);
        run_isolated(50, None, "half_discarded", usize_range(0, 100), |&n| {
            if n % 2 == 1 {
                return Err(Failure::Discard);
            }
            executed.set(executed.get() + 1);
            Ok(())
        });
        assert_eq!(executed.get(), 50);
    }

    #[test]
    fn exhausted_discard_budget_panics() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_isolated(10, None, "always_discarded", any_bool(), |_| {
                Err(Failure::Discard)
            });
        }));
        let msg = *result
            .unwrap_err()
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("gave up"), "{msg}");
    }

    #[test]
    fn float_counterexamples_shrink_toward_the_boundary() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_isolated(256, None, "below_half", f64_range(0.0, 1.0), |&x| {
                if x < 0.5 {
                    Ok(())
                } else {
                    Err(Failure::fail(format!("{x}")))
                }
            });
        }));
        let msg = *result
            .unwrap_err()
            .downcast::<String>()
            .expect("string panic");
        let shrunk: f64 = msg
            .split("counterexample: ")
            .nth(1)
            .and_then(|s| s.split('\n').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("parse counterexample");
        assert!((0.5..0.5001).contains(&shrunk), "shrunk to {shrunk}");
    }

    #[test]
    fn name_hash_separates_properties() {
        assert_ne!(name_hash("a"), name_hash("b"));
        assert_eq!(name_hash("same"), name_hash("same"));
    }
}
