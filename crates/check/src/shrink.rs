//! Generic choice-level shrinking: edit the recorded `u64` choice
//! sequence of a failing case and replay generation, keeping any edit
//! that still fails the property. Because primitive generators map
//! smaller choices to simpler values, this shrinks *through* every
//! combinator without per-type shrink code.

use crate::runner::{Failure, PropResult};
use crate::source::Source;
use crate::Gen;

/// Hard cap on candidate evaluations per shrink (each evaluation
/// regenerates the value and re-runs the property).
const MAX_EVALS: u32 = 2_000;

/// Span sizes tried by the deletion and zeroing passes, coarse to
/// fine.
const SPANS: [usize; 5] = [32, 8, 4, 2, 1];

/// A minimized failing case.
pub struct Minimized<V> {
    /// The smallest failing value found.
    pub value: V,
    /// Its failure message.
    pub message: String,
    /// Number of accepted shrink steps.
    pub steps: u32,
}

/// Replays `data` through `gen` and the property. `None` when the
/// candidate is invalid or passes; `Some(value, message)` when it
/// still fails.
fn eval_candidate<G, P>(gen: &G, prop: &P, data: &[u64]) -> Option<(G::Value, String)>
where
    G: Gen,
    P: Fn(&G::Value) -> PropResult,
{
    let mut src = Source::replay(data.to_vec());
    let value = gen.generate(&mut src);
    if src.is_invalid() {
        return None;
    }
    match prop(&value) {
        Err(Failure::Fail(message)) => Some((value, message)),
        Ok(()) | Err(Failure::Discard) => None,
    }
}

/// Minimizes a failing choice sequence. `value`/`message` are the
/// original failure, returned unchanged if no edit still fails.
pub fn minimize<G, P>(
    gen: &G,
    prop: &P,
    mut data: Vec<u64>,
    value: G::Value,
    message: String,
) -> Minimized<G::Value>
where
    G: Gen,
    P: Fn(&G::Value) -> PropResult,
{
    let mut best = Minimized {
        value,
        message,
        steps: 0,
    };
    let evals = std::cell::Cell::new(0u32);
    let accept =
        |data: &mut Vec<u64>, candidate: Vec<u64>, best: &mut Minimized<G::Value>| -> bool {
            evals.set(evals.get() + 1);
            if evals.get() > MAX_EVALS {
                return false;
            }
            if let Some((v, m)) = eval_candidate(gen, prop, &candidate) {
                *data = candidate;
                best.value = v;
                best.message = m;
                best.steps += 1;
                true
            } else {
                false
            }
        };

    loop {
        let steps_before = best.steps;

        // Pass 1: delete spans of choices (drops trailing vec elements
        // and unused draws; coarse to fine, scanning from the tail so
        // indices stay valid after a deletion).
        for &span in &SPANS {
            let mut start = data.len().saturating_sub(span);
            loop {
                if start < data.len() {
                    let mut candidate = data.clone();
                    candidate.drain(start..(start + span).min(candidate.len()));
                    accept(&mut data, candidate, &mut best);
                }
                if start == 0 || evals.get() > MAX_EVALS {
                    break;
                }
                start = start.saturating_sub(span);
            }
        }

        // Pass 2: zero spans (collapses ranges to their lower bounds).
        for &span in &SPANS {
            let mut start = 0;
            while start < data.len() && evals.get() <= MAX_EVALS {
                let end = (start + span).min(data.len());
                if data[start..end].iter().any(|&v| v != 0) {
                    let mut candidate = data.clone();
                    candidate[start..end].iter_mut().for_each(|v| *v = 0);
                    accept(&mut data, candidate, &mut best);
                }
                start += span;
            }
        }

        // Pass 3: minimize individual choices by binary search for the
        // smallest still-failing value (exact boundary counterexamples
        // for monotone failure sets).
        for i in 0..data.len() {
            if evals.get() > MAX_EVALS {
                break;
            }
            if data[i] == 0 {
                continue;
            }
            let mut candidate = data.clone();
            candidate[i] = 0;
            if accept(&mut data, candidate, &mut best) {
                continue;
            }
            let mut passing_below = 0u64; // 0 just passed
            for _ in 0..64 {
                let cur = data[i];
                if cur - passing_below <= 1 || evals.get() > MAX_EVALS {
                    break;
                }
                let mid = passing_below + (cur - passing_below) / 2;
                let mut candidate = data.clone();
                candidate[i] = mid;
                if !accept(&mut data, candidate, &mut best) {
                    passing_below = mid;
                }
            }
        }

        if best.steps == steps_before || evals.get() > MAX_EVALS {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{f64_range, u64_range, usize_range, vec_of};

    #[test]
    fn shrinks_scalar_to_the_boundary() {
        // Property: n < 500. Failing cases are n >= 500; the minimal
        // counterexample is exactly 500.
        let gen = usize_range(0, 10_000);
        let prop = |&n: &usize| -> PropResult {
            if n < 500 {
                Ok(())
            } else {
                Err(Failure::fail(format!("{n} too big")))
            }
        };
        // Build a failing choice sequence by searching live draws.
        let mut rng = eagleeye_rng::SplitMix64::new(4);
        let (data, value) = loop {
            let salt = rng.next_u64();
            let mut src = Source::live(rng.fork(salt));
            let v = gen.generate(&mut src);
            if v >= 500 {
                break (src.into_data(), v);
            }
        };
        let min = minimize(&gen, &prop, data, value, "seed".into());
        assert_eq!(min.value, 500, "after {} steps", min.steps);
        assert!(min.steps > 0);
    }

    #[test]
    fn shrinks_vectors_to_minimal_length() {
        // Property: the vec sum stays below 10. Minimal failing case
        // is a single element of exactly 10 (length floor is 1).
        let gen = vec_of(usize_range(0, 100), 1, 20);
        let prop = |v: &Vec<usize>| -> PropResult {
            if v.iter().sum::<usize>() < 10 {
                Ok(())
            } else {
                Err(Failure::fail("sum too big"))
            }
        };
        let mut rng = eagleeye_rng::SplitMix64::new(9);
        let (data, value) = loop {
            let salt = rng.next_u64();
            let mut src = Source::live(rng.fork(salt));
            let v = gen.generate(&mut src);
            if v.iter().sum::<usize>() >= 10 {
                break (src.into_data(), v);
            }
        };
        let min = minimize(&gen, &prop, data, value, "seed".into());
        assert_eq!(min.value, vec![10]);
    }

    /// A `(scenario, delta)`-shaped nested tuple must shrink to the
    /// same minimal counterexample from *any* failing starting point:
    /// irrelevant components collapse to their lower bounds, the two
    /// load-bearing ones to their exact failure boundaries. This is
    /// the stability contract the differential suites lean on when
    /// they report a shrunk `(scenario, delta)` pair.
    #[test]
    fn nested_scenario_delta_tuples_shrink_to_a_stable_minimum() {
        type Case = ((u64, usize, f64), (usize, f64));
        let gen = (
            (u64_range(0, 1_000), usize_range(1, 8), f64_range(0.0, 1.0)),
            (usize_range(0, 5), f64_range(0.0, 1.0)),
        );
        // Fails iff groups >= 3 AND delta kind >= 2 — a conjunction,
        // so the shrinker must keep both components at their
        // boundaries while zeroing everything else.
        let prop = |v: &Case| -> PropResult {
            let ((_, groups, _), (kind, _)) = *v;
            if groups >= 3 && kind >= 2 {
                Err(Failure::fail(format!("groups {groups}, kind {kind}")))
            } else {
                Ok(())
            }
        };
        let mut minima = Vec::new();
        for rng_seed in [1u64, 17, 901, 4242] {
            let mut rng = eagleeye_rng::SplitMix64::new(rng_seed);
            let (data, value) = loop {
                let salt = rng.next_u64();
                let mut src = Source::live(rng.fork(salt));
                let v = gen.generate(&mut src);
                if prop(&v).is_err() {
                    break (src.into_data(), v);
                }
            };
            let min = minimize(&gen, &prop, data, value, "seed".into());
            assert!(prop(&min.value).is_err(), "minimum must still fail");
            minima.push(min.value);
        }
        for m in &minima {
            assert_eq!(
                *m,
                ((0, 3, 0.0), (2, 0.0)),
                "unstable minimal counterexample across starts: {minima:?}"
            );
        }
    }

    /// An always-failing property over a composite generator drives the
    /// shrinker to its global fixpoint — the empty choice sequence,
    /// where every component sits at its lower bound — and the
    /// outer shrink loop terminates there instead of cycling.
    #[test]
    fn always_failing_composite_terminates_at_the_global_minimum() {
        type Case = ((usize, Vec<u64>), f64);
        let gen = (
            (usize_range(2, 9), vec_of(u64_range(5, 50), 0, 6)),
            f64_range(1.5, 2.5),
        );
        let prop = |_: &Case| -> PropResult { Err(Failure::fail("always")) };
        let mut rng = eagleeye_rng::SplitMix64::new(8);
        let salt = rng.next_u64();
        let mut src = Source::live(rng.fork(salt));
        let value = gen.generate(&mut src);
        let min = minimize(&gen, &prop, src.into_data(), value, "always".into());
        assert_eq!(min.value, ((2, vec![]), 1.5));
        assert!(min.steps > 0, "shrinking must have made progress");
    }

    #[test]
    fn shrinking_a_float_approaches_the_threshold() {
        let gen = f64_range(0.0, 1_000.0);
        let prop = |&x: &f64| -> PropResult {
            if x < 250.0 {
                Ok(())
            } else {
                Err(Failure::fail(format!("{x}")))
            }
        };
        let mut rng = eagleeye_rng::SplitMix64::new(2);
        let (data, value) = loop {
            let salt = rng.next_u64();
            let mut src = Source::live(rng.fork(salt));
            let v = gen.generate(&mut src);
            if v >= 250.0 {
                break (src.into_data(), v);
            }
        };
        let min = minimize(&gen, &prop, data, value, "seed".into());
        assert!(
            (250.0..250.001).contains(&min.value),
            "shrunk to {}",
            min.value
        );
    }
}
