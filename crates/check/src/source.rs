//! The choice stream generators draw from: live (recording) or replay.

use eagleeye_rng::SplitMix64;

enum Mode {
    /// Draws come from the PRNG and are recorded.
    Live(SplitMix64),
    /// Draws come from a recorded (possibly shrinker-edited) sequence;
    /// reads past the end yield `0`, the simplest choice.
    Replay { pos: usize },
}

/// A stream of `u64` choices consumed by [`crate::Gen::generate`].
///
/// Generators must obtain **all** randomness through [`Source::draw`];
/// that is what makes recorded cases replayable and shrinkable. A
/// source can be flagged [invalid](Source::mark_invalid) when
/// generation cannot produce a value (e.g. a `filter` whose predicate
/// keeps rejecting); the runner discards such cases rather than
/// running the property.
pub struct Source {
    mode: Mode,
    data: Vec<u64>,
    invalid: bool,
}

impl Source {
    /// A live source drawing fresh choices from `rng` and recording
    /// them for later shrinking.
    pub fn live(rng: SplitMix64) -> Self {
        Source {
            mode: Mode::Live(rng),
            data: Vec::new(),
            invalid: false,
        }
    }

    /// A replay source feeding back `data`; draws past the end return
    /// `0`.
    pub fn replay(data: Vec<u64>) -> Self {
        Source {
            mode: Mode::Replay { pos: 0 },
            data,
            invalid: false,
        }
    }

    /// The next raw choice.
    pub fn draw(&mut self) -> u64 {
        match &mut self.mode {
            Mode::Live(rng) => {
                let v = rng.next_u64();
                self.data.push(v);
                v
            }
            Mode::Replay { pos } => {
                let v = self.data.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        }
    }

    /// Flags the value under construction as invalid (generation could
    /// not satisfy its own constraints). The runner discards the case.
    pub fn mark_invalid(&mut self) {
        self.invalid = true;
    }

    /// True when [`Source::mark_invalid`] was called during generation.
    pub fn is_invalid(&self) -> bool {
        self.invalid
    }

    /// The recorded (live) or source (replay) choice sequence.
    pub fn into_data(self) -> Vec<u64> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_records_what_it_draws() {
        let mut s = Source::live(SplitMix64::new(7));
        let a = s.draw();
        let b = s.draw();
        let data = s.into_data();
        assert_eq!(data, vec![a, b]);
        let mut r = SplitMix64::new(7);
        assert_eq!(a, r.next_u64());
        assert_eq!(b, r.next_u64());
    }

    #[test]
    fn replay_feeds_back_then_zero_pads() {
        let mut s = Source::replay(vec![5, 6]);
        assert_eq!(s.draw(), 5);
        assert_eq!(s.draw(), 6);
        assert_eq!(s.draw(), 0);
        assert_eq!(s.draw(), 0);
        assert!(!s.is_invalid());
    }

    #[test]
    fn invalid_flag_sticks() {
        let mut s = Source::replay(vec![]);
        s.mark_invalid();
        assert!(s.is_invalid());
    }
}
