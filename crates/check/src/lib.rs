//! Dependency-free, deterministic property-based testing for the
//! EagleEye workspace.
//!
//! The sandboxed build has no network access, so the workspace cannot
//! depend on `proptest` or `quickcheck`. This crate provides the subset
//! those tools are used for here — random-input property tests with
//! minimal counterexamples and deterministic replay — on top of the
//! in-repo [`eagleeye_rng::SplitMix64`] generator, with no dependencies
//! beyond `std`.
//!
//! # Design: choice streams
//!
//! A generator ([`Gen`]) does not draw from the PRNG directly; it draws
//! `u64` *choices* from a [`Source`]. In live mode the source pulls
//! fresh choices from a seeded `SplitMix64` and records them; in replay
//! mode it feeds back a recorded (possibly edited) choice sequence,
//! returning `0` past the end. Because every primitive generator maps
//! *smaller raw choices to simpler values* (range generators collapse
//! toward their lower bound, collection generators toward fewer
//! elements), shrinking is generic: the shrinker edits the raw choice
//! sequence — deleting spans, zeroing them, minimizing single values —
//! and replays generation, which automatically shrinks *through* every
//! combinator (`map`, `filter`, tuples, `vec_of`) with no per-type
//! shrink code. This is the Hypothesis/proptest internal design in
//! miniature.
//!
//! # Determinism and replay
//!
//! Case `i` of property `name` generates from
//! `SplitMix64::new(BASE).fork(hash(name)).fork(i)` — fully determined
//! by the test name and case index, portable across platforms. When a
//! property fails, the panic message reports the failing case's seed;
//! running the same test with `EAGLEEYE_CHECK_SEED=<seed>` regenerates
//! exactly that case (and re-runs the deterministic shrinker, arriving
//! at the same minimal counterexample). `EAGLEEYE_CHECK_CASES=<n>`
//! scales every property's case count, e.g. for an extended CI budget.
//!
//! # Example
//!
//! ```
//! use eagleeye_check::{check_cases, f64_range, prop_assert};
//!
//! check_cases(
//!     64,
//!     "addition_commutes",
//!     (f64_range(-1e6, 1e6), f64_range(-1e6, 1e6)),
//!     |&(a, b)| {
//!         prop_assert!(a + b == b + a, "{a} + {b} not commutative");
//!         Ok(())
//!     },
//! );
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod gen;
mod runner;
mod shrink;
mod source;

pub use gen::{
    any_bool, f64_range, u64_range, usize_range, vec_of, BoolGen, F64Range, Filter, Gen, Map,
    U64Range, UsizeRange, VecGen,
};
pub use runner::{check, check_cases, Failure, PropResult, DEFAULT_CASES};
pub use source::Source;

/// Asserts a condition inside a property, failing the case with a
/// formatted message (or the stringified condition) instead of
/// panicking — so the harness can shrink the input first.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Failure::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Failure::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a property (by `==`),
/// failing the case with both values' debug representations.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::Failure::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

/// Discards the current case without failing when a precondition does
/// not hold; the runner generates a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Failure::Discard);
        }
    };
}
