//! Generators and combinators over [`Source`] choice streams.
//!
//! Every primitive generator maps smaller raw choices to simpler
//! values (ranges collapse toward their lower bound, collections
//! toward fewer elements), which is what lets the generic choice-level
//! shrinker in [`crate::check`] produce minimal counterexamples
//! without per-type shrink implementations.

use crate::source::Source;

/// How many fresh draws a [`Filter`] attempts before flagging the case
/// invalid (discarded by the runner).
const FILTER_RETRIES: usize = 64;

/// A value generator over a [`Source`] choice stream.
///
/// Implementations must derive the value **only** from
/// [`Source::draw`] calls — never from ambient state — so cases
/// replay and shrink deterministically.
pub trait Gen {
    /// The generated value type.
    type Value;

    /// Generates one value, consuming choices from `src`.
    fn generate(&self, src: &mut Source) -> Self::Value;

    /// Maps generated values through `f` (shrinking still operates on
    /// this generator's choices, so mapped values shrink for free).
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying with fresh
    /// choices a bounded number of times before discarding the case.
    fn filter<F>(self, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }
}

/// See [`Gen::map`].
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G, U, F> Gen for Map<G, F>
where
    G: Gen,
    F: Fn(G::Value) -> U,
{
    type Value = U;

    fn generate(&self, src: &mut Source) -> U {
        (self.f)(self.inner.generate(src))
    }
}

/// See [`Gen::filter`].
pub struct Filter<G, F> {
    inner: G,
    pred: F,
}

impl<G, F> Gen for Filter<G, F>
where
    G: Gen,
    F: Fn(&G::Value) -> bool,
{
    type Value = G::Value;

    fn generate(&self, src: &mut Source) -> G::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(src);
            if src.is_invalid() || (self.pred)(&v) {
                return v;
            }
        }
        src.mark_invalid();
        self.inner.generate(src)
    }
}

/// Uniform `f64` in the half-open range `[lo, hi)`; see [`f64_range`].
#[derive(Debug, Clone, Copy)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` in `[lo, hi)` with 53 bits of precision. The raw
/// choice `0` maps to exactly `lo`, so values shrink toward the lower
/// bound.
///
/// # Panics
///
/// Panics unless `lo < hi` and both are finite.
pub fn f64_range(lo: f64, hi: f64) -> F64Range {
    assert!(
        lo < hi && lo.is_finite() && hi.is_finite(),
        "f64_range requires finite lo < hi, got [{lo}, {hi})"
    );
    F64Range { lo, hi }
}

impl Gen for F64Range {
    type Value = f64;

    fn generate(&self, src: &mut Source) -> f64 {
        let frac = (src.draw() >> 11) as f64 / (1u64 << 53) as f64;
        self.lo + (self.hi - self.lo) * frac
    }
}

/// Uniform `usize` in a half-open range; see [`usize_range`].
#[derive(Debug, Clone, Copy)]
pub struct UsizeRange {
    lo: usize,
    hi: usize,
}

/// Uniform `usize` in `[lo, hi)` (multiply-shift mapping; the bias is
/// `< span / 2^64`). The raw choice `0` maps to exactly `lo`.
///
/// # Panics
///
/// Panics unless `lo < hi`.
pub fn usize_range(lo: usize, hi: usize) -> UsizeRange {
    assert!(lo < hi, "usize_range requires lo < hi, got [{lo}, {hi})");
    UsizeRange { lo, hi }
}

impl Gen for UsizeRange {
    type Value = usize;

    fn generate(&self, src: &mut Source) -> usize {
        let span = (self.hi - self.lo) as u64;
        self.lo + (((src.draw() as u128 * span as u128) >> 64) as u64) as usize
    }
}

/// Uniform `u64` in a half-open range; see [`u64_range`].
#[derive(Debug, Clone, Copy)]
pub struct U64Range {
    lo: u64,
    hi: u64,
}

/// Uniform `u64` in `[lo, hi)`. The raw choice `0` maps to exactly
/// `lo`.
///
/// # Panics
///
/// Panics unless `lo < hi`.
pub fn u64_range(lo: u64, hi: u64) -> U64Range {
    assert!(lo < hi, "u64_range requires lo < hi, got [{lo}, {hi})");
    U64Range { lo, hi }
}

impl Gen for U64Range {
    type Value = u64;

    fn generate(&self, src: &mut Source) -> u64 {
        let span = (self.hi - self.lo) as u128;
        self.lo + ((src.draw() as u128 * span) >> 64) as u64
    }
}

/// Uniform `bool`; see [`any_bool`].
#[derive(Debug, Clone, Copy)]
pub struct BoolGen;

/// Uniform `bool`. The raw choice `0` maps to `false`.
pub fn any_bool() -> BoolGen {
    BoolGen
}

impl Gen for BoolGen {
    type Value = bool;

    fn generate(&self, src: &mut Source) -> bool {
        // Use the top bit: multiply-shift keeps "smaller raw = false".
        src.draw() >= 1 << 63
    }
}

/// A vector of values from an element generator; see [`vec_of`].
pub struct VecGen<G> {
    elem: G,
    min: usize,
    max: usize,
}

/// A `Vec` of `elem`-generated values with length uniform in
/// `[min, max)` (mirroring `proptest::collection::vec(g, min..max)`).
/// The length choice is drawn first, so zeroing it shrinks toward
/// `min` elements.
///
/// # Panics
///
/// Panics unless `min < max`.
pub fn vec_of<G: Gen>(elem: G, min: usize, max: usize) -> VecGen<G> {
    assert!(min < max, "vec_of requires min < max, got [{min}, {max})");
    VecGen { elem, min, max }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, src: &mut Source) -> Vec<G::Value> {
        let len = usize_range(self.min, self.max).generate(src);
        (0..len).map(|_| self.elem.generate(src)).collect()
    }
}

macro_rules! tuple_gen {
    ($($g:ident . $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, src: &mut Source) -> Self::Value {
                ($(self.$idx.generate(src),)+)
            }
        }
    };
}

tuple_gen!(A.0);
tuple_gen!(A.0, B.1);
tuple_gen!(A.0, B.1, C.2);
tuple_gen!(A.0, B.1, C.2, D.3);
tuple_gen!(A.0, B.1, C.2, D.3, E.4);
tuple_gen!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_gen!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);

#[cfg(test)]
mod tests {
    use super::*;
    use eagleeye_rng::SplitMix64;

    fn live(seed: u64) -> Source {
        Source::live(SplitMix64::new(seed))
    }

    #[test]
    fn ranges_stay_in_bounds_and_zero_means_lo() {
        let mut src = live(3);
        for _ in 0..500 {
            let x = f64_range(-4.0, 9.5).generate(&mut src);
            assert!((-4.0..9.5).contains(&x));
            let n = usize_range(2, 7).generate(&mut src);
            assert!((2..7).contains(&n));
            let u = u64_range(10, 20).generate(&mut src);
            assert!((10..20).contains(&u));
        }
        let mut zeros = Source::replay(vec![]);
        assert_eq!(f64_range(-4.0, 9.5).generate(&mut zeros), -4.0);
        assert_eq!(usize_range(2, 7).generate(&mut zeros), 2);
        assert_eq!(u64_range(10, 20).generate(&mut zeros), 10);
        assert!(!any_bool().generate(&mut zeros));
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let g = (f64_range(0.0, 1.0), vec_of(usize_range(0, 9), 1, 6));
        let a = g.generate(&mut live(42));
        let b = g.generate(&mut live(42));
        assert_eq!(a, b);
    }

    #[test]
    fn map_and_filter_compose() {
        let g = usize_range(0, 100)
            .filter(|&n| n % 2 == 0)
            .map(|n| n as f64 / 2.0);
        let mut src = live(11);
        for _ in 0..100 {
            let v = g.generate(&mut src);
            assert!(!src.is_invalid());
            assert_eq!(v.fract(), 0.0);
        }
    }

    #[test]
    fn impossible_filter_marks_invalid() {
        let g = usize_range(0, 10).filter(|_| false);
        let mut src = live(1);
        let _ = g.generate(&mut src);
        assert!(src.is_invalid());
    }

    #[test]
    fn vec_lengths_cover_the_range() {
        let g = vec_of(any_bool(), 1, 5);
        let mut seen = [false; 5];
        let mut src = live(9);
        for _ in 0..200 {
            seen[g.generate(&mut src).len()] = true;
        }
        assert_eq!(seen, [false, true, true, true, true]);
    }

    #[test]
    fn replayed_choices_reproduce_the_value() {
        let g = (f64_range(-1.0, 1.0), vec_of(u64_range(0, 50), 2, 9));
        let mut src = live(77);
        let original = g.generate(&mut src);
        let replayed = g.generate(&mut Source::replay(src.into_data()));
        assert_eq!(original, replayed);
    }
}
