//! Kodan-style tile elision (an extension following the paper's
//! discussion of prior work, §2.1).
//!
//! Kodan [Denby et al., ASPLOS'23] reduces onboard compute by skipping
//! tiles whose geospatial context cannot contain targets (ocean tiles
//! for land apps, land tiles for ship detection, cloud-occluded tiles
//! for everything). This module models elision as a kept-tile fraction,
//! which composes with [`crate::TilingConfig`] to shrink the leader's
//! per-frame inference cost — the knob that turns the paper's infeasible
//! 4× tiling back under the energy budget.

use crate::TilingConfig;

/// A tile-elision policy: the fraction of a frame's tiles that survive
/// context filtering and are actually processed.
///
/// # Example
///
/// ```
/// use eagleeye_detect::{TileElision, TilingConfig, YoloVariant};
///
/// let tiling = TilingConfig::paper_default();
/// let elision = TileElision::new(0.4); // e.g. ship app over 40% ocean tiles
/// let full = YoloVariant::N.frame_processing_time_s(&tiling);
/// let elided = elision.frame_processing_time_s(YoloVariant::N, &tiling);
/// assert!((elided / full - 0.4).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileElision {
    keep_fraction: f64,
}

impl TileElision {
    /// Creates a policy keeping `keep_fraction ∈ [0, 1]` of tiles
    /// (clamped).
    pub fn new(keep_fraction: f64) -> Self {
        TileElision {
            keep_fraction: keep_fraction.clamp(0.0, 1.0),
        }
    }

    /// No elision: process every tile (the paper's evaluated leader).
    pub fn none() -> Self {
        TileElision { keep_fraction: 1.0 }
    }

    /// Kept-tile fraction.
    #[inline]
    pub fn keep_fraction(&self) -> f64 {
        self.keep_fraction
    }

    /// Tiles processed per frame after elision (at least 1 when the
    /// tiling itself is non-empty and anything is kept).
    pub fn tiles_per_frame(&self, tiling: &TilingConfig) -> usize {
        let kept = (tiling.tiles_per_frame() as f64 * self.keep_fraction).round() as usize;
        if self.keep_fraction > 0.0 {
            kept.max(1)
        } else {
            0
        }
    }

    /// Frame processing time under elision, seconds.
    pub fn frame_processing_time_s(
        &self,
        variant: crate::YoloVariant,
        tiling: &TilingConfig,
    ) -> f64 {
        self.tiles_per_frame(tiling) as f64 * variant.per_tile_latency_s()
    }
}

impl Default for TileElision {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::YoloVariant;

    #[test]
    fn keep_fraction_is_clamped() {
        assert_eq!(TileElision::new(2.0).keep_fraction(), 1.0);
        assert_eq!(TileElision::new(-1.0).keep_fraction(), 0.0);
    }

    #[test]
    fn no_elision_matches_plain_tiling() {
        let tiling = TilingConfig::paper_default();
        assert_eq!(
            TileElision::none().tiles_per_frame(&tiling),
            tiling.tiles_per_frame()
        );
    }

    #[test]
    fn half_elision_halves_compute() {
        let tiling = TilingConfig::paper_default();
        let full = YoloVariant::M.frame_processing_time_s(&tiling);
        let half = TileElision::new(0.5).frame_processing_time_s(YoloVariant::M, &tiling);
        assert!((half / full - 0.5).abs() < 0.02);
    }

    #[test]
    fn full_elision_processes_nothing() {
        let tiling = TilingConfig::paper_default();
        assert_eq!(TileElision::new(0.0).tiles_per_frame(&tiling), 0);
    }

    #[test]
    fn tiny_keep_still_processes_one_tile() {
        let tiling = TilingConfig::paper_default();
        assert_eq!(TileElision::new(0.001).tiles_per_frame(&tiling), 1);
    }
}
