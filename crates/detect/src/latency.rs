/// Frame tiling configuration for onboard inference (paper §4.1).
///
/// A low-resolution frame (100 km swath at 30 m GSD ≈ 3,333 px square) is
/// decomposed into square tiles that are scaled to the ML input size and
/// processed sequentially. `tile_factor` multiplies the tile count to
/// model denser (overlapping / finer) tilings — the knob swept in the
/// paper's energy analysis (Fig. 16: 1×, 2×, 4× tiling).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TilingConfig {
    /// Frame side length in pixels.
    pub frame_px: u32,
    /// Tile side length in pixels.
    pub tile_px: u32,
    /// Multiplier on the tile count (1 = plain grid tiling).
    pub tile_factor: f64,
}

impl TilingConfig {
    /// The paper's default operating point: a 3,333 px frame (100 km at
    /// 30 m/px) in a 10×10 = 100-tile grid.
    pub fn paper_default() -> Self {
        TilingConfig {
            frame_px: 3_333,
            tile_px: 334,
            tile_factor: 1.0,
        }
    }

    /// Creates a config; `tile_px` is clamped to at least 1.
    pub fn new(frame_px: u32, tile_px: u32, tile_factor: f64) -> Self {
        TilingConfig {
            frame_px,
            tile_px: tile_px.max(1),
            tile_factor: tile_factor.max(0.0),
        }
    }

    /// Number of tiles needed to cover the frame (grid tiling times the
    /// tile factor), at least 1.
    pub fn tiles_per_frame(&self) -> usize {
        let per_side = self.frame_px.div_ceil(self.tile_px) as f64;
        ((per_side * per_side * self.tile_factor).round() as usize).max(1)
    }
}

/// YOLOv8 model variants with per-tile inference latency on the Jetson
/// AGX Orin in its 15 W mode, calibrated so the default 100-tile frame
/// reproduces the paper's mix-camera compute times (Fig. 13):
/// 1.4 s (n), 2.6 s (s), 5.5 s (m), 8.6 s (l), 11.8 s (x).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YoloVariant {
    /// YOLOv8-nano.
    N,
    /// YOLOv8-small.
    S,
    /// YOLOv8-medium.
    M,
    /// YOLOv8-large.
    L,
    /// YOLOv8-extra-large.
    X,
}

impl YoloVariant {
    /// All variants, smallest first.
    pub const ALL: [YoloVariant; 5] = [
        YoloVariant::N,
        YoloVariant::S,
        YoloVariant::M,
        YoloVariant::L,
        YoloVariant::X,
    ];

    /// Per-tile inference latency in seconds.
    pub fn per_tile_latency_s(self) -> f64 {
        match self {
            YoloVariant::N => 0.014,
            YoloVariant::S => 0.026,
            YoloVariant::M => 0.055,
            YoloVariant::L => 0.086,
            YoloVariant::X => 0.118,
        }
    }

    /// The paper's quoted frame compute time for this variant at the
    /// default tiling (used to label Fig. 13).
    pub fn paper_frame_time_s(self) -> f64 {
        match self {
            YoloVariant::N => 1.4,
            YoloVariant::S => 2.6,
            YoloVariant::M => 5.5,
            YoloVariant::L => 8.6,
            YoloVariant::X => 11.8,
        }
    }

    /// Short display name.
    pub fn label(self) -> &'static str {
        match self {
            YoloVariant::N => "Yolo_n",
            YoloVariant::S => "Yolo_s",
            YoloVariant::M => "Yolo_m",
            YoloVariant::L => "Yolo_l",
            YoloVariant::X => "Yolo_x",
        }
    }

    /// Total frame processing time for a tiling config, seconds.
    pub fn frame_processing_time_s(self, tiling: &TilingConfig) -> f64 {
        tiling.tiles_per_frame() as f64 * self.per_tile_latency_s()
    }
}

impl std::fmt::Display for YoloVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tiling_is_one_hundred_tiles() {
        assert_eq!(TilingConfig::paper_default().tiles_per_frame(), 100);
    }

    #[test]
    fn frame_times_match_paper_within_tolerance() {
        let tiling = TilingConfig::paper_default();
        for v in YoloVariant::ALL {
            let t = v.frame_processing_time_s(&tiling);
            let want = v.paper_frame_time_s();
            assert!((t - want).abs() / want < 0.25, "{v}: {t} vs paper {want}");
        }
    }

    #[test]
    fn tile_factor_scales_tiles() {
        let base = TilingConfig::new(3_000, 300, 1.0);
        let dbl = TilingConfig::new(3_000, 300, 2.0);
        assert_eq!(base.tiles_per_frame(), 100);
        assert_eq!(dbl.tiles_per_frame(), 200);
    }

    #[test]
    fn smaller_tiles_mean_more_time() {
        let mut last = 0.0;
        for tile in [1000, 800, 600, 400, 200] {
            let t = YoloVariant::N.frame_processing_time_s(&TilingConfig::new(3_333, tile, 1.0));
            assert!(t >= last, "time not monotone at tile {tile}");
            last = t;
        }
    }

    #[test]
    fn wide_tile_range_meets_frame_deadline_for_nano() {
        // Fig 14b: frame processing stays below the 15 s capture deadline
        // across tile sizes 200..1000 px for the deployed (nano) model.
        for tile in (200..=1000).step_by(100) {
            let t = YoloVariant::N.frame_processing_time_s(&TilingConfig::new(3_333, tile, 1.0));
            assert!(t < 15.0, "tile {tile}: {t} s");
        }
    }

    #[test]
    fn variants_are_ordered_by_cost() {
        let tiling = TilingConfig::paper_default();
        let times: Vec<f64> = YoloVariant::ALL
            .iter()
            .map(|v| v.frame_processing_time_s(&tiling))
            .collect();
        for w in times.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn degenerate_tile_size_is_clamped() {
        let t = TilingConfig::new(100, 0, 1.0);
        assert!(t.tiles_per_frame() >= 1);
    }
}
