//! Analytic model of the onboard ML pipeline: detection quality versus
//! ground sample distance, frame tiling, inference latency, and the
//! two-stage oil-tank volume estimator.
//!
//! The paper runs YOLOv8 variants on a Jetson AGX Orin (15 W mode) over
//! tiled low-resolution frames. No GPU or imagery is available in this
//! reproduction, and none is needed: the scheduler and the coverage
//! simulator consume only (a) which targets were detected, with what
//! confidence, and (b) how long inference took. This crate models both
//! from first principles, calibrated to the paper's published numbers:
//!
//! * [`DetectorModel`] — recall/precision as a logistic function of
//!   pixels-on-target (target size ÷ GSD), calibrated so a ship at the
//!   30 m/px leader GSD is detected with the paper's 77.6 % mAP@50, and
//!   an oil tank survives ~10× GSD degradation for *detection* while
//!   fine-grained measurement degrades (Fig. 3's key contrast).
//! * [`TilingConfig`] + [`YoloVariant`] — frame tiling and per-tile
//!   latency such that the default 100-tile frame yields the paper's
//!   mix-camera compute times: 1.4 / 2.6 / 5.5 / 8.6 / 11.8 s for
//!   Yolo n/s/m/l/x (Fig. 13), and frame processing stays under the 15 s
//!   deadline across a wide tile-size range (Fig. 14b).
//! * [`VolumeEstimator`] — shadow-based fill-level estimation whose error
//!   grows with GSD ÷ tank diameter, reproducing the Fig. 3b separation
//!   between "can detect the tank" and "can measure its shadow".
//!
//! # Example
//!
//! ```
//! use eagleeye_detect::{DetectorModel, YoloVariant, TilingConfig};
//!
//! let model = DetectorModel::ship_detector();
//! // A ~100 m ship: easily seen at 30 m/px, invisible at 3 km/px.
//! assert!(model.recall_at_gsd(30.0, 100.0) > 0.6);
//! assert!(model.recall_at_gsd(3000.0, 100.0) < 0.05);
//!
//! let tiling = TilingConfig::paper_default();
//! let t = YoloVariant::N.frame_processing_time_s(&tiling);
//! assert!((t - 1.4).abs() < 0.2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod detector;
mod elision;
mod latency;
mod volume;

pub use detector::{Detection, DetectorModel};
pub use elision::TileElision;
pub use latency::{TilingConfig, YoloVariant};
pub use volume::VolumeEstimator;
