use eagleeye_rng::SplitMix64;

/// One detection emitted by the onboard model for a frame.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Index of the target within the frame's candidate list (false
    /// positives get `usize::MAX`).
    pub target_index: usize,
    /// Model confidence in `[0, 1]`; the scheduler uses this as the
    /// priority score (paper §3.2).
    pub confidence: f64,
    /// True for hallucinated detections with no underlying target.
    pub is_false_positive: bool,
}

/// Analytic object-detection quality model.
///
/// Recall is a logistic function of *pixels on target* `p = size/GSD`:
///
/// ```text
/// recall(p) = max_recall / (1 + exp(-steepness · (p − p_half)))
/// ```
///
/// so detection quality falls off smoothly as resolution degrades, with a
/// knee at `p_half` pixels. A fixed recall can be forced with
/// [`DetectorModel::with_fixed_recall`], which is how the Fig. 15 recall
/// sweep drives the coverage evaluator.
///
/// # Example
///
/// ```
/// use eagleeye_detect::DetectorModel;
///
/// let d = DetectorModel::ship_detector().with_fixed_recall(0.5);
/// let hits = d.detect(&[(0.9, 100.0); 1000], 42);
/// let frac = hits.len() as f64 / 1000.0;
/// assert!((frac - 0.5).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorModel {
    max_recall: f64,
    p_half_px: f64,
    steepness: f64,
    precision: f64,
    fixed_recall: Option<f64>,
    gsd_m: f64,
}

impl DetectorModel {
    /// Detector calibrated for the ship workload: the paper reports
    /// mAP@50 = 77.6 % for YOLOv8 on 30 m GSD imagery of ~90–300 m ships
    /// (≈ 3–10 px on target).
    pub fn ship_detector() -> Self {
        DetectorModel {
            max_recall: 0.95,
            p_half_px: 2.2,
            steepness: 2.2,
            precision: 0.9,
            fixed_recall: None,
            gsd_m: 30.0,
        }
    }

    /// Detector calibrated for oil-tank detection (Fig. 3a): detection
    /// accuracy stays high from 0.7 m/px all the way to ~11.5 m/px for
    /// 20–80 m tanks.
    pub fn oiltank_detector() -> Self {
        DetectorModel {
            max_recall: 0.98,
            p_half_px: 1.8,
            steepness: 3.0,
            precision: 0.95,
            fixed_recall: None,
            gsd_m: 0.72,
        }
    }

    /// Generic detector for point-like targets whose size roughly equals
    /// the leader GSD footprint (lakes, airplanes on 30 m imagery).
    pub fn generic(gsd_m: f64) -> Self {
        DetectorModel {
            max_recall: 0.92,
            p_half_px: 1.5,
            steepness: 2.0,
            precision: 0.9,
            fixed_recall: None,
            gsd_m,
        }
    }

    /// Forces a fixed recall regardless of GSD (for sensitivity sweeps).
    pub fn with_fixed_recall(mut self, recall: f64) -> Self {
        self.fixed_recall = Some(recall.clamp(0.0, 1.0));
        self
    }

    /// Sets the sensor GSD used by [`DetectorModel::detect`].
    pub fn with_gsd(mut self, gsd_m: f64) -> Self {
        self.gsd_m = gsd_m.max(1e-6);
        self
    }

    /// Sets the precision (fraction of emitted detections that are real).
    pub fn with_precision(mut self, precision: f64) -> Self {
        self.precision = precision.clamp(0.01, 1.0);
        self
    }

    /// Model precision.
    #[inline]
    pub fn precision(&self) -> f64 {
        self.precision
    }

    /// Sensor GSD in meters per pixel.
    #[inline]
    pub fn gsd_m(&self) -> f64 {
        self.gsd_m
    }

    /// Recall for a target of `target_size_m` imaged at `gsd_m_px`.
    pub fn recall_at_gsd(&self, gsd_m_px: f64, target_size_m: f64) -> f64 {
        if let Some(r) = self.fixed_recall {
            return r;
        }
        let px = target_size_m / gsd_m_px.max(1e-9);
        self.max_recall / (1.0 + (-self.steepness * (px - self.p_half_px)).exp())
    }

    /// Runs the detector over a frame's candidate targets, given as
    /// `(value, size_m)` pairs. Returns one [`Detection`] per detected
    /// target plus sampled false positives; deterministic in `seed`.
    ///
    /// Confidence is the target's value scaled by a small detection
    /// noise, so target priority ordering is (mostly) preserved — the
    /// property the scheduler's objective relies on.
    pub fn detect(&self, targets: &[(f64, f64)], seed: u64) -> Vec<Detection> {
        let mut rng = SplitMix64::new(seed);
        let mut out = Vec::new();
        for (i, &(value, size_m)) in targets.iter().enumerate() {
            let r = self.recall_at_gsd(self.gsd_m, size_m);
            if rng.chance(r.clamp(0.0, 1.0)) {
                let confidence = (value * rng.range_f64(0.9, 1.0)).clamp(0.0, 1.0);
                out.push(Detection {
                    target_index: i,
                    confidence,
                    is_false_positive: false,
                });
            }
        }
        // False positives: emitted at a rate making the requested
        // precision hold in expectation: fp = tp * (1 - precision)/precision.
        let tp = out.len() as f64;
        let fp_expected = tp * (1.0 - self.precision) / self.precision;
        let fp_count = fp_expected.floor() as usize
            + usize::from(rng.chance(fp_expected.fract().clamp(0.0, 1.0)));
        for _ in 0..fp_count {
            out.push(Detection {
                target_index: usize::MAX,
                confidence: rng.range_f64(0.3, 0.7),
                is_false_positive: true,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_is_monotone_in_resolution() {
        let d = DetectorModel::ship_detector();
        let mut last = 1.0;
        for gsd in [10.0, 30.0, 60.0, 120.0, 300.0, 1000.0] {
            let r = d.recall_at_gsd(gsd, 100.0);
            assert!(r <= last + 1e-12, "recall not monotone at gsd {gsd}");
            last = r;
        }
    }

    #[test]
    fn ship_detector_matches_paper_operating_point() {
        // ~77.6% mAP at 30 m GSD for ships in the 90-300 m range; use a
        // mid-size 150 m ship.
        let d = DetectorModel::ship_detector();
        let r = d.recall_at_gsd(30.0, 150.0);
        assert!(r > 0.7 && r < 0.95, "recall {r}");
    }

    #[test]
    fn oiltank_detection_survives_ten_x_gsd() {
        // Fig 3a: detection works from 0.7 to 11.5 m/px for a 40 m tank.
        let d = DetectorModel::oiltank_detector();
        assert!(d.recall_at_gsd(0.72, 40.0) > 0.9);
        assert!(d.recall_at_gsd(11.5, 40.0) > 0.8);
        assert!(d.recall_at_gsd(60.0, 40.0) < 0.3);
    }

    #[test]
    fn fixed_recall_overrides_gsd() {
        let d = DetectorModel::ship_detector().with_fixed_recall(0.2);
        assert_eq!(d.recall_at_gsd(1.0, 1000.0), 0.2);
        assert_eq!(d.recall_at_gsd(1e6, 1.0), 0.2);
    }

    #[test]
    fn detect_is_deterministic_in_seed() {
        let d = DetectorModel::ship_detector();
        let targets = vec![(0.8, 120.0); 50];
        assert_eq!(d.detect(&targets, 5), d.detect(&targets, 5));
    }

    #[test]
    fn zero_recall_detects_nothing() {
        let d = DetectorModel::ship_detector().with_fixed_recall(0.0);
        assert!(d.detect(&[(1.0, 100.0); 100], 1).is_empty());
    }

    #[test]
    fn full_recall_detects_everything() {
        let d = DetectorModel::ship_detector()
            .with_fixed_recall(1.0)
            .with_precision(1.0);
        let hits = d.detect(&[(1.0, 100.0); 100], 1);
        assert_eq!(hits.len(), 100);
        assert!(hits.iter().all(|h| !h.is_false_positive));
    }

    #[test]
    fn false_positive_rate_tracks_precision() {
        let d = DetectorModel::ship_detector()
            .with_fixed_recall(1.0)
            .with_precision(0.8);
        let hits = d.detect(&[(1.0, 100.0); 1000], 2);
        let fp = hits.iter().filter(|h| h.is_false_positive).count();
        // Expected fp = 1000 * 0.25 = 250.
        assert!((fp as f64 - 250.0).abs() < 30.0, "fp {fp}");
    }

    #[test]
    fn confidence_stays_in_unit_interval() {
        let d = DetectorModel::ship_detector().with_fixed_recall(1.0);
        for h in d.detect(&[(0.9, 100.0); 64], 3) {
            assert!((0.0..=1.0).contains(&h.confidence));
        }
    }
}
