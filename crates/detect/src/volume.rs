use eagleeye_rng::SplitMix64;

/// Shadow-based oil-tank fill-level estimator (paper Fig. 3, §5.2).
///
/// The two-stage task: (1) detect the tank, (2) estimate its fill level
/// from the shadow cast on the floating lid. Stage 1 tolerates coarse
/// imagery (see [`crate::DetectorModel::oiltank_detector`]); stage 2 needs
/// to *measure* the shadow, so its error grows with GSD relative to the
/// tank diameter — the paper's motivating observation that some analytics
/// have resolution thresholds.
///
/// Error model: the shadow edge is localized to ~±1 pixel, so the
/// relative fill error scales like `gsd / (k · diameter)` plus a floor
/// from the method itself (the paper's reference method reports 97.2 %
/// accuracy on high-resolution imagery, i.e. a ~3 % floor).
///
/// # Example
///
/// ```
/// use eagleeye_detect::VolumeEstimator;
///
/// let est = VolumeEstimator::default();
/// // High-resolution: error close to the method floor.
/// let e_hi = est.expected_relative_error(0.72, 40.0);
/// // 10x coarser: far larger error.
/// let e_lo = est.expected_relative_error(7.2, 40.0);
/// assert!(e_hi < 0.1 && e_lo > 2.0 * e_hi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VolumeEstimator {
    /// Relative error floor of the method at perfect resolution.
    error_floor: f64,
    /// Pixel-localization error multiplier.
    pixel_error_gain: f64,
}

impl Default for VolumeEstimator {
    fn default() -> Self {
        // Floor calibrated to the paper's cited 97.2% accuracy; gain
        // calibrated so errors become analyst-useless (>50%) around
        // 10+ m/px for typical 40 m tanks (Fig. 3b).
        VolumeEstimator {
            error_floor: 0.028,
            pixel_error_gain: 2.0,
        }
    }
}

impl VolumeEstimator {
    /// Creates an estimator with explicit calibration.
    pub fn new(error_floor: f64, pixel_error_gain: f64) -> Self {
        VolumeEstimator {
            error_floor: error_floor.max(0.0),
            pixel_error_gain: pixel_error_gain.max(0.0),
        }
    }

    /// Expected relative fill-level error (1-sigma) at a given GSD for a
    /// tank of `diameter_m`.
    pub fn expected_relative_error(&self, gsd_m_px: f64, diameter_m: f64) -> f64 {
        self.error_floor + self.pixel_error_gain * gsd_m_px / diameter_m.max(1e-9)
    }

    /// Simulates an estimate of `true_fill` (in `[0,1]`) for one tank,
    /// deterministic in `seed`. The result is clamped to `[0, 1]`.
    pub fn estimate(&self, true_fill: f64, gsd_m_px: f64, diameter_m: f64, seed: u64) -> f64 {
        let sigma = self.expected_relative_error(gsd_m_px, diameter_m);
        let mut rng = SplitMix64::new(seed);
        let gauss = rng.gaussian();
        (true_fill + gauss * sigma).clamp(0.0, 1.0)
    }

    /// Relative error percentiles over a population of tanks, as the
    /// paper reports (50th and 90th in Fig. 3b). `tanks` is a slice of
    /// `(true_fill, diameter_m)`.
    pub fn error_percentiles(&self, tanks: &[(f64, f64)], gsd_m_px: f64, seed: u64) -> (f64, f64) {
        if tanks.is_empty() {
            return (0.0, 0.0);
        }
        let mut errors: Vec<f64> = tanks
            .iter()
            .enumerate()
            .map(|(i, &(fill, dia))| {
                let est = self.estimate(fill, gsd_m_px, dia, seed.wrapping_add(i as u64));
                (est - fill).abs() / fill.max(1e-3)
            })
            .collect();
        errors.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| {
            let idx = ((errors.len() as f64 - 1.0) * p).round() as usize;
            errors[idx]
        };
        (pct(0.5), pct(0.9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_grows_with_gsd() {
        let e = VolumeEstimator::default();
        let mut last = 0.0;
        for gsd in [0.7, 1.5, 3.0, 6.0, 11.5] {
            let err = e.expected_relative_error(gsd, 40.0);
            assert!(err > last);
            last = err;
        }
    }

    #[test]
    fn high_res_error_matches_method_floor() {
        // Paper: 97.2% accuracy on high-res images → ~3% error at 0.72 m/px.
        let e = VolumeEstimator::default();
        let err = e.expected_relative_error(0.72, 40.0);
        assert!(err < 0.08, "err {err}");
    }

    #[test]
    fn low_res_error_is_analyst_useless() {
        // Fig 3b: at ~11.5 m/px, fill estimation is unusable.
        let e = VolumeEstimator::default();
        let err = e.expected_relative_error(11.5, 40.0);
        assert!(err > 0.4, "err {err}");
    }

    #[test]
    fn estimates_are_clamped_and_deterministic() {
        let e = VolumeEstimator::default();
        for i in 0..32 {
            let v = e.estimate(0.5, 11.5, 30.0, i);
            assert!((0.0..=1.0).contains(&v));
            assert_eq!(v, e.estimate(0.5, 11.5, 30.0, i));
        }
    }

    #[test]
    fn percentiles_are_ordered() {
        let e = VolumeEstimator::default();
        let tanks: Vec<(f64, f64)> = (0..200)
            .map(|i| (0.1 + 0.004 * i as f64, 30.0 + (i % 50) as f64))
            .collect();
        let (p50, p90) = e.error_percentiles(&tanks, 5.0, 7);
        assert!(p50 <= p90);
        assert!(p50 > 0.0);
    }

    #[test]
    fn percentiles_of_empty_population_are_zero() {
        let e = VolumeEstimator::default();
        assert_eq!(e.error_percentiles(&[], 5.0, 0), (0.0, 0.0));
    }

    #[test]
    fn bigger_tanks_are_easier_to_measure() {
        let e = VolumeEstimator::default();
        assert!(e.expected_relative_error(3.0, 80.0) < e.expected_relative_error(3.0, 20.0));
    }
}
