//! Property-based tests for the detector behaviour model, on the
//! `eagleeye-check` harness (replay with `EAGLEEYE_CHECK_SEED`, scale
//! with `EAGLEEYE_CHECK_CASES`).

use eagleeye_check::{check_cases, f64_range, prop_assert, prop_assert_eq, u64_range, usize_range};
use eagleeye_detect::{DetectorModel, TileElision, TilingConfig, VolumeEstimator, YoloVariant};

const CASES: u32 = 64;

/// Recall is monotone: coarser imagery never detects better, and
/// bigger targets never detect worse.
#[test]
fn recall_monotonicity() {
    check_cases(
        CASES,
        "recall_monotonicity",
        (
            f64_range(0.5, 100.0),
            f64_range(1.0, 50.0),
            f64_range(5.0, 500.0),
            f64_range(1.0, 10.0),
        ),
        |&(gsd_a, gsd_factor, size, size_factor)| {
            let d = DetectorModel::ship_detector();
            let coarse = d.recall_at_gsd(gsd_a * gsd_factor, size);
            let fine = d.recall_at_gsd(gsd_a, size);
            prop_assert!(coarse <= fine + 1e-12);
            let small = d.recall_at_gsd(gsd_a, size);
            let large = d.recall_at_gsd(gsd_a, size * size_factor);
            prop_assert!(large >= small - 1e-12);
            prop_assert!((0.0..=1.0).contains(&fine));
            Ok(())
        },
    );
}

/// Detection output never exceeds the candidate count in true
/// positives and confidences stay in the unit interval.
#[test]
fn detections_are_well_formed() {
    check_cases(
        CASES,
        "detections_are_well_formed",
        (
            usize_range(0, 200),
            f64_range(0.0, 1.0),
            f64_range(0.05, 1.0),
            u64_range(0, 1000),
        ),
        |&(n, recall, precision, seed)| {
            let d = DetectorModel::ship_detector()
                .with_fixed_recall(recall)
                .with_precision(precision);
            let targets = vec![(0.8, 120.0); n];
            let hits = d.detect(&targets, seed);
            let tp = hits.iter().filter(|h| !h.is_false_positive).count();
            prop_assert!(tp <= n);
            for h in &hits {
                prop_assert!((0.0..=1.0).contains(&h.confidence));
                if !h.is_false_positive {
                    prop_assert!(h.target_index < n);
                }
            }
            // Determinism.
            prop_assert_eq!(hits, d.detect(&targets, seed));
            Ok(())
        },
    );
}

/// Frame time is monotone in model size and in tile count, and
/// elision never increases it.
#[test]
fn latency_monotonicity() {
    check_cases(
        CASES,
        "latency_monotonicity",
        (
            usize_range(500, 5_000),
            usize_range(100, 1_000),
            f64_range(0.0, 1.0),
        ),
        |&(frame_px, tile_px, keep)| {
            let tiling = TilingConfig::new(frame_px as u32, tile_px as u32, 1.0);
            let mut last = 0.0;
            for v in YoloVariant::ALL {
                let t = v.frame_processing_time_s(&tiling);
                prop_assert!(t >= last);
                last = t;
            }
            let full = YoloVariant::M.frame_processing_time_s(&tiling);
            let elided = TileElision::new(keep).frame_processing_time_s(YoloVariant::M, &tiling);
            prop_assert!(elided <= full + 1e-12);
            Ok(())
        },
    );
}

/// Volume estimation error grows with GSD and estimates stay in the
/// physical range.
#[test]
fn volume_error_properties() {
    check_cases(
        CASES,
        "volume_error_properties",
        (
            f64_range(0.5, 30.0),
            f64_range(1.0, 20.0),
            f64_range(15.0, 90.0),
            f64_range(0.0, 1.0),
            u64_range(0, 500),
        ),
        |&(gsd, factor, diameter, fill, seed)| {
            let e = VolumeEstimator::default();
            prop_assert!(
                e.expected_relative_error(gsd * factor, diameter)
                    >= e.expected_relative_error(gsd, diameter)
            );
            let est = e.estimate(fill, gsd, diameter, seed);
            prop_assert!((0.0..=1.0).contains(&est));
            prop_assert_eq!(est, e.estimate(fill, gsd, diameter, seed));
            Ok(())
        },
    );
}
