//! Property-based tests for the detector behaviour model.

use eagleeye_detect::{DetectorModel, TileElision, TilingConfig, VolumeEstimator, YoloVariant};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recall is monotone: coarser imagery never detects better, and
    /// bigger targets never detect worse.
    #[test]
    fn recall_monotonicity(
        gsd_a in 0.5f64..100.0,
        gsd_factor in 1.0f64..50.0,
        size in 5.0f64..500.0,
        size_factor in 1.0f64..10.0,
    ) {
        let d = DetectorModel::ship_detector();
        let coarse = d.recall_at_gsd(gsd_a * gsd_factor, size);
        let fine = d.recall_at_gsd(gsd_a, size);
        prop_assert!(coarse <= fine + 1e-12);
        let small = d.recall_at_gsd(gsd_a, size);
        let large = d.recall_at_gsd(gsd_a, size * size_factor);
        prop_assert!(large >= small - 1e-12);
        prop_assert!((0.0..=1.0).contains(&fine));
    }

    /// Detection output never exceeds the candidate count in true
    /// positives and confidences stay in the unit interval.
    #[test]
    fn detections_are_well_formed(
        n in 0usize..200,
        recall in 0.0f64..1.0,
        precision in 0.05f64..1.0,
        seed in 0u64..1000,
    ) {
        let d = DetectorModel::ship_detector()
            .with_fixed_recall(recall)
            .with_precision(precision);
        let targets = vec![(0.8, 120.0); n];
        let hits = d.detect(&targets, seed);
        let tp = hits.iter().filter(|h| !h.is_false_positive).count();
        prop_assert!(tp <= n);
        for h in &hits {
            prop_assert!((0.0..=1.0).contains(&h.confidence));
            if !h.is_false_positive {
                prop_assert!(h.target_index < n);
            }
        }
        // Determinism.
        prop_assert_eq!(hits, d.detect(&targets, seed));
    }

    /// Frame time is monotone in model size and in tile count, and
    /// elision never increases it.
    #[test]
    fn latency_monotonicity(
        frame_px in 500u32..5_000,
        tile_px in 100u32..1_000,
        keep in 0.0f64..1.0,
    ) {
        let tiling = TilingConfig::new(frame_px, tile_px, 1.0);
        let mut last = 0.0;
        for v in YoloVariant::ALL {
            let t = v.frame_processing_time_s(&tiling);
            prop_assert!(t >= last);
            last = t;
        }
        let full = YoloVariant::M.frame_processing_time_s(&tiling);
        let elided = TileElision::new(keep).frame_processing_time_s(YoloVariant::M, &tiling);
        prop_assert!(elided <= full + 1e-12);
    }

    /// Volume estimation error grows with GSD and estimates stay in the
    /// physical range.
    #[test]
    fn volume_error_properties(
        gsd in 0.5f64..30.0,
        factor in 1.0f64..20.0,
        diameter in 15.0f64..90.0,
        fill in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let e = VolumeEstimator::default();
        prop_assert!(e.expected_relative_error(gsd * factor, diameter)
            >= e.expected_relative_error(gsd, diameter));
        let est = e.estimate(fill, gsd, diameter, seed);
        prop_assert!((0.0..=1.0).contains(&est));
        prop_assert_eq!(est, e.estimate(fill, gsd, diameter, seed));
    }
}
