use crate::earth::MEAN_RADIUS_M;
use crate::{greatcircle, GeoError, GeodeticPoint};
// eagleeye-lint: allow(determinism): cells are read by key in bbox order; query_radius sorts its output
use std::collections::HashMap;

/// A uniform latitude/longitude bucket index over point payloads.
///
/// `GridIndex` maps the globe onto `cell_deg`-degree cells and stores item
/// indices per cell. It supports bounding-box and radius queries with
/// correct longitude wrap-around, and is how the coverage evaluator finds
/// the handful of targets inside a 100 km swath frame out of a 1.4-million
/// point dataset without a linear scan.
///
/// The index stores `usize` handles; callers keep the payloads in their own
/// arena and use the handles to look them up.
///
/// # Example
///
/// ```
/// use eagleeye_geo::{GeodeticPoint, GridIndex};
///
/// let pts = vec![
///     GeodeticPoint::from_degrees(10.0, 10.0, 0.0)?,
///     GeodeticPoint::from_degrees(-40.0, 120.0, 0.0)?,
/// ];
/// let index = GridIndex::build(1.0, pts.iter().map(|p| (p.lat_deg(), p.lon_deg())))?;
/// let near = index.query_radius(&pts[0], 50_000.0, |i| pts[i]);
/// assert_eq!(near, vec![0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell_deg: f64,
    // eagleeye-lint: allow(determinism): read via `get` in deterministic cell-range order only
    cells: HashMap<(i32, i32), Vec<usize>>,
    len: usize,
}

impl GridIndex {
    /// Builds an index over `(lat_deg, lon_deg)` pairs; the i-th pair gets
    /// handle `i`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidCellSize`] when `cell_deg` is not
    /// strictly positive.
    pub fn build(
        cell_deg: f64,
        points: impl IntoIterator<Item = (f64, f64)>,
    ) -> Result<Self, GeoError> {
        if !(cell_deg > 0.0) || !cell_deg.is_finite() {
            return Err(GeoError::InvalidCellSize { cell_deg });
        }
        // eagleeye-lint: allow(determinism): build inserts by key; the map is never iterated
        let mut cells: HashMap<(i32, i32), Vec<usize>> = HashMap::new();
        let mut len = 0;
        for (i, (lat, lon)) in points.into_iter().enumerate() {
            cells
                .entry(Self::cell_of(cell_deg, lat, lon))
                .or_default()
                .push(i);
            len = i + 1;
        }
        Ok(GridIndex {
            cell_deg,
            cells,
            len,
        })
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no points are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured cell size in degrees.
    #[inline]
    pub fn cell_deg(&self) -> f64 {
        self.cell_deg
    }

    fn cell_of(cell_deg: f64, lat_deg: f64, lon_deg: f64) -> (i32, i32) {
        // Normalize longitude to [-180, 180) so the cell key is canonical.
        let mut lon = lon_deg % 360.0;
        if lon >= 180.0 {
            lon -= 360.0;
        } else if lon < -180.0 {
            lon += 360.0;
        }
        (
            (lat_deg / cell_deg).floor() as i32,
            (lon / cell_deg).floor() as i32,
        )
    }

    /// Returns handles of all points whose cell intersects the given
    /// bounding box (degrees). The result may contain points slightly
    /// outside the box (cell granularity); callers refine with an exact
    /// test. Handles the antimeridian: `lon_min_deg > lon_max_deg` means
    /// the box wraps.
    pub fn query_bbox(
        &self,
        lat_min_deg: f64,
        lat_max_deg: f64,
        lon_min_deg: f64,
        lon_max_deg: f64,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        let lat_lo = (lat_min_deg.max(-90.0) / self.cell_deg).floor() as i32;
        let lat_hi = (lat_max_deg.min(90.0) / self.cell_deg).floor() as i32;
        let (lon_min_cell, lon_max_cell) = Self::lon_cell_bounds(self.cell_deg);
        let lon_cells_total = lon_max_cell - lon_min_cell + 1;

        let lon_ranges: Vec<(i32, i32)> = if lon_min_deg <= lon_max_deg {
            vec![(
                (lon_min_deg / self.cell_deg).floor() as i32,
                (lon_max_deg / self.cell_deg).floor() as i32,
            )]
        } else {
            // Wrapping box: [lon_min, 180) and [-180, lon_max].
            vec![
                (
                    (lon_min_deg / self.cell_deg).floor() as i32,
                    (180.0 / self.cell_deg).ceil() as i32,
                ),
                (
                    (-180.0 / self.cell_deg).floor() as i32,
                    (lon_max_deg / self.cell_deg).floor() as i32,
                ),
            ]
        };

        for lat_c in lat_lo..=lat_hi {
            for &(lo, hi) in &lon_ranges {
                // Guard against pathological spans wider than the globe.
                let span = (hi as i64 - lo as i64).min(lon_cells_total);
                for d in 0..=span {
                    let lon_c = Self::wrap_lon_cell(self.cell_deg, lo as i64 + d);
                    if let Some(items) = self.cells.get(&(lat_c, lon_c)) {
                        out.extend_from_slice(items);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The canonical longitude-cell range `[min, max]` that
    /// [`Self::cell_of`] can produce for normalized longitudes in
    /// `[-180, 180)`. When `cell_deg` does not divide 360 evenly the
    /// last cell is partial; deriving the range here (instead of from
    /// `ceil(360 / cell_deg)`) keeps query wrapping and key
    /// construction agreeing on which cells exist, so points just shy
    /// of +180° are never stranded in an unreachable cell.
    fn lon_cell_bounds(cell_deg: f64) -> (i64, i64) {
        let min_cell = (-180.0 / cell_deg).floor() as i64;
        // Highest index holding a longitude strictly below 180°.
        let max_cell = (180.0 / cell_deg).ceil() as i64 - 1;
        (min_cell, max_cell.max(min_cell))
    }

    fn wrap_lon_cell(cell_deg: f64, cell: i64) -> i32 {
        let (min_cell, max_cell) = Self::lon_cell_bounds(cell_deg);
        let total = max_cell - min_cell + 1;
        let mut c = cell;
        while c < min_cell {
            c += total;
        }
        while c > max_cell {
            c -= total;
        }
        c as i32
    }

    /// Returns handles of all points within `radius_m` of `center`,
    /// exactly (great-circle distance), sorted ascending by handle.
    ///
    /// `resolve` maps a handle back to its point; this keeps the index
    /// payload-free.
    pub fn query_radius(
        &self,
        center: &GeodeticPoint,
        radius_m: f64,
        resolve: impl Fn(usize) -> GeodeticPoint,
    ) -> Vec<usize> {
        let delta_rad = radius_m / MEAN_RADIUS_M;
        let dlat = delta_rad.to_degrees();
        let lat_min = center.lat_deg() - dlat;
        let lat_max = center.lat_deg() + dlat;
        // Exact spherical-cap longitude bound: if a pole is inside the
        // cap every longitude qualifies; otherwise the maximum deviation
        // is asin(sin δ / cos φ).
        let pole_inside = center.lat_rad().abs() + delta_rad >= std::f64::consts::FRAC_PI_2;
        let dlon = if pole_inside || delta_rad >= std::f64::consts::FRAC_PI_2 {
            180.0
        } else {
            let s = (delta_rad.sin() / center.lat_rad().cos().max(1e-12)).min(1.0);
            s.asin().to_degrees() + 1e-9
        };
        let (lon_min, lon_max) = if dlon >= 180.0 {
            (-180.0, 180.0)
        } else {
            let lo = center.lon_deg() - dlon;
            let hi = center.lon_deg() + dlon;
            if lo < -180.0 {
                (lo + 360.0, hi)
            } else if hi > 180.0 {
                (lo, hi - 360.0)
            } else {
                (lo, hi)
            }
        };
        let mut out: Vec<usize> = self
            .query_bbox(lat_min, lat_max, lon_min, lon_max)
            .into_iter()
            .filter(|&i| greatcircle::distance_m(center, &resolve(i)) <= radius_m)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lat: f64, lon: f64) -> GeodeticPoint {
        GeodeticPoint::from_degrees(lat, lon, 0.0).unwrap()
    }

    fn build(points: &[GeodeticPoint]) -> GridIndex {
        GridIndex::build(1.0, points.iter().map(|p| (p.lat_deg(), p.lon_deg()))).unwrap()
    }

    #[test]
    fn rejects_bad_cell_size() {
        assert!(GridIndex::build(0.0, std::iter::empty()).is_err());
        assert!(GridIndex::build(-1.0, std::iter::empty()).is_err());
    }

    #[test]
    fn empty_index() {
        let idx = GridIndex::build(1.0, std::iter::empty()).unwrap();
        assert!(idx.is_empty());
        assert!(idx.query_bbox(-10.0, 10.0, -10.0, 10.0).is_empty());
    }

    #[test]
    fn radius_query_matches_brute_force() {
        // Deterministic pseudo-grid of points.
        let mut pts = Vec::new();
        for lat in (-60..=60).step_by(5) {
            for lon in (-180..180).step_by(10) {
                pts.push(pt(lat as f64 + 0.37, lon as f64 + 0.71));
            }
        }
        let idx = build(&pts);
        let center = pt(10.0, 20.0);
        let radius = 1_500_000.0;
        let got = idx.query_radius(&center, radius, |i| pts[i]);
        let want: Vec<usize> = (0..pts.len())
            .filter(|&i| greatcircle::distance_m(&center, &pts[i]) <= radius)
            .collect();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn radius_query_across_antimeridian() {
        let pts = vec![pt(0.0, 179.5), pt(0.0, -179.5), pt(0.0, 0.0)];
        let idx = build(&pts);
        let center = pt(0.0, 180.0);
        let got = idx.query_radius(&center, 200_000.0, |i| pts[i]);
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn radius_query_near_pole() {
        let pts = vec![pt(89.5, 0.0), pt(89.5, 90.0), pt(89.5, 180.0), pt(0.0, 0.0)];
        let idx = build(&pts);
        let center = pt(90.0, 0.0);
        let got = idx.query_radius(&center, 100_000.0, |i| pts[i]);
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn bbox_query_is_superset_of_exact() {
        let pts = vec![pt(5.5, 5.5), pt(6.5, 6.5), pt(50.0, 50.0)];
        let idx = build(&pts);
        let got = idx.query_bbox(5.0, 7.0, 5.0, 7.0);
        assert!(got.contains(&0));
        assert!(got.contains(&1));
        assert!(!got.contains(&2));
    }
}
