use crate::earth;
use crate::{GeoError, Vec3};
use std::fmt;

/// A point in geodetic coordinates: latitude, longitude, altitude.
///
/// Latitude and longitude are stored in radians; altitude is meters above
/// the reference surface (sphere or ellipsoid, depending on the conversion
/// used). Construction validates ranges, so every `GeodeticPoint` in the
/// program is a real location.
///
/// # Example
///
/// ```
/// use eagleeye_geo::GeodeticPoint;
///
/// let p = GeodeticPoint::from_degrees(45.0, -120.0, 475_000.0)?;
/// assert!((p.lat_deg() - 45.0).abs() < 1e-12);
/// # Ok::<(), eagleeye_geo::GeoError>(())
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeodeticPoint {
    lat_rad: f64,
    lon_rad: f64,
    alt_m: f64,
}

impl GeodeticPoint {
    /// Creates a point from radians and meters.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::LatitudeOutOfRange`] when `lat_rad` is outside
    /// `[-π/2, π/2]`, [`GeoError::LongitudeNotFinite`] for a non-finite
    /// longitude, and [`GeoError::AltitudeInvalid`] for a non-finite
    /// altitude or one below the Earth's center.
    pub fn new(lat_rad: f64, lon_rad: f64, alt_m: f64) -> Result<Self, GeoError> {
        if !lat_rad.is_finite() || lat_rad.abs() > std::f64::consts::FRAC_PI_2 + 1e-12 {
            return Err(GeoError::LatitudeOutOfRange { lat_rad });
        }
        if !lon_rad.is_finite() {
            return Err(GeoError::LongitudeNotFinite { lon_rad });
        }
        if !alt_m.is_finite() || alt_m < -earth::MEAN_RADIUS_M {
            return Err(GeoError::AltitudeInvalid { alt_m });
        }
        Ok(GeodeticPoint {
            lat_rad: lat_rad.clamp(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2),
            lon_rad: crate::wrap_pi(lon_rad),
            alt_m,
        })
    }

    /// Creates a point from degrees and meters.
    ///
    /// # Errors
    ///
    /// Same as [`GeodeticPoint::new`].
    pub fn from_degrees(lat_deg: f64, lon_deg: f64, alt_m: f64) -> Result<Self, GeoError> {
        Self::new(lat_deg.to_radians(), lon_deg.to_radians(), alt_m)
    }

    /// Latitude in radians, in `[-π/2, π/2]`.
    #[inline]
    pub fn lat_rad(&self) -> f64 {
        self.lat_rad
    }

    /// Longitude in radians, normalized to `(-π, π]`.
    #[inline]
    pub fn lon_rad(&self) -> f64 {
        self.lon_rad
    }

    /// Altitude in meters above the reference surface.
    #[inline]
    pub fn alt_m(&self) -> f64 {
        self.alt_m
    }

    /// Latitude in degrees.
    #[inline]
    pub fn lat_deg(&self) -> f64 {
        self.lat_rad.to_degrees()
    }

    /// Longitude in degrees.
    #[inline]
    pub fn lon_deg(&self) -> f64 {
        self.lon_rad.to_degrees()
    }

    /// Returns the same horizontal location at a different altitude.
    #[inline]
    pub fn with_altitude(&self, alt_m: f64) -> Result<Self, GeoError> {
        Self::new(self.lat_rad, self.lon_rad, alt_m)
    }

    /// Converts to ECEF Cartesian coordinates on a spherical Earth of
    /// radius [`earth::MEAN_RADIUS_M`].
    pub fn to_ecef_spherical(&self) -> Ecef {
        let r = earth::MEAN_RADIUS_M + self.alt_m;
        let (slat, clat) = self.lat_rad.sin_cos();
        let (slon, clon) = self.lon_rad.sin_cos();
        Ecef(Vec3::new(r * clat * clon, r * clat * slon, r * slat))
    }

    /// Converts to ECEF Cartesian coordinates on the WGS-84 ellipsoid.
    pub fn to_ecef_wgs84(&self) -> Ecef {
        let (slat, clat) = self.lat_rad.sin_cos();
        let (slon, clon) = self.lon_rad.sin_cos();
        let n = earth::WGS84_A_M / (1.0 - earth::WGS84_E2 * slat * slat).sqrt();
        Ecef(Vec3::new(
            (n + self.alt_m) * clat * clon,
            (n + self.alt_m) * clat * slon,
            (n * (1.0 - earth::WGS84_E2) + self.alt_m) * slat,
        ))
    }
}

impl fmt::Display for GeodeticPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.5}°, {:.5}°, {:.1} m)",
            self.lat_deg(),
            self.lon_deg(),
            self.alt_m
        )
    }
}

/// An Earth-centered, Earth-fixed Cartesian position in meters.
///
/// `Ecef` is a newtype over [`Vec3`]: the wrapper records the frame so that
/// ECEF positions cannot be accidentally mixed with inertial (ECI)
/// positions or pointing directions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Ecef(pub Vec3);

impl Ecef {
    /// Creates an ECEF position from Cartesian components in meters.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Ecef(Vec3::new(x, y, z))
    }

    /// The underlying Cartesian vector.
    #[inline]
    pub fn as_vec3(&self) -> Vec3 {
        self.0
    }

    /// Geocentric distance from the Earth's center in meters.
    #[inline]
    pub fn radius_m(&self) -> f64 {
        self.0.norm()
    }

    /// Converts to geodetic coordinates on a spherical Earth.
    ///
    /// # Errors
    ///
    /// Returns an error for the degenerate position at the Earth's center.
    pub fn to_geodetic_spherical(&self) -> Result<GeodeticPoint, GeoError> {
        let r = self.0.norm();
        if r < 1e-9 {
            return Err(GeoError::AltitudeInvalid {
                alt_m: -earth::MEAN_RADIUS_M,
            });
        }
        let lat = (self.0.z / r).clamp(-1.0, 1.0).asin();
        let lon = self.0.y.atan2(self.0.x);
        GeodeticPoint::new(lat, lon, r - earth::MEAN_RADIUS_M)
    }

    /// Converts to geodetic coordinates on the WGS-84 ellipsoid using
    /// Bowring's iterative method (converges in a handful of iterations to
    /// sub-millimeter accuracy for near-Earth points).
    ///
    /// # Errors
    ///
    /// Returns an error for the degenerate position at the Earth's center.
    pub fn to_geodetic_wgs84(&self) -> Result<GeodeticPoint, GeoError> {
        let p = (self.0.x * self.0.x + self.0.y * self.0.y).sqrt();
        let r = self.0.norm();
        if r < 1e-9 {
            return Err(GeoError::AltitudeInvalid {
                alt_m: -earth::WGS84_A_M,
            });
        }
        let lon = self.0.y.atan2(self.0.x);
        if p < 1e-9 {
            // On the polar axis.
            let lat = if self.0.z >= 0.0 {
                std::f64::consts::FRAC_PI_2
            } else {
                -std::f64::consts::FRAC_PI_2
            };
            return GeodeticPoint::new(lat, lon, self.0.z.abs() - earth::WGS84_B_M);
        }
        let mut lat = (self.0.z / (p * (1.0 - earth::WGS84_E2))).atan();
        let mut alt = 0.0;
        for _ in 0..16 {
            let slat = lat.sin();
            let n = earth::WGS84_A_M / (1.0 - earth::WGS84_E2 * slat * slat).sqrt();
            alt = p / lat.cos() - n;
            // Fixed-point update: tan(lat) = z / (p * (1 - e2 * N/(N+h))).
            let denom = p * (1.0 - earth::WGS84_E2 * n / (n + alt));
            let new_lat = (self.0.z / denom).atan();
            let converged = (new_lat - lat).abs() < 1e-13;
            lat = new_lat;
            if converged {
                break;
            }
        }
        GeodeticPoint::new(lat, lon, alt)
    }
}

impl From<Vec3> for Ecef {
    fn from(v: Vec3) -> Self {
        Ecef(v)
    }
}

impl fmt::Display for Ecef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ECEF{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_latitude() {
        assert!(GeodeticPoint::from_degrees(91.0, 0.0, 0.0).is_err());
        assert!(GeodeticPoint::from_degrees(-91.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn rejects_non_finite_inputs() {
        assert!(GeodeticPoint::new(f64::NAN, 0.0, 0.0).is_err());
        assert!(GeodeticPoint::new(0.0, f64::INFINITY, 0.0).is_err());
        assert!(GeodeticPoint::new(0.0, 0.0, f64::NAN).is_err());
    }

    #[test]
    fn longitude_is_normalized() {
        let p = GeodeticPoint::from_degrees(0.0, 270.0, 0.0).unwrap();
        assert!((p.lon_deg() + 90.0).abs() < 1e-9);
    }

    #[test]
    fn spherical_round_trip() {
        let p = GeodeticPoint::from_degrees(37.5, -122.25, 475_000.0).unwrap();
        let q = p.to_ecef_spherical().to_geodetic_spherical().unwrap();
        assert!((p.lat_rad() - q.lat_rad()).abs() < 1e-12);
        assert!((p.lon_rad() - q.lon_rad()).abs() < 1e-12);
        assert!((p.alt_m() - q.alt_m()).abs() < 1e-6);
    }

    #[test]
    fn wgs84_round_trip() {
        for &(lat, lon, alt) in &[
            (0.0, 0.0, 0.0),
            (45.0, 45.0, 1000.0),
            (-33.9, 151.2, 500_000.0),
            (89.9, 10.0, 0.0),
            (-89.9, -170.0, 100.0),
        ] {
            let p = GeodeticPoint::from_degrees(lat, lon, alt).unwrap();
            let q = p.to_ecef_wgs84().to_geodetic_wgs84().unwrap();
            assert!(
                (p.lat_deg() - q.lat_deg()).abs() < 1e-7,
                "lat mismatch at {lat},{lon},{alt}: {} vs {}",
                p.lat_deg(),
                q.lat_deg()
            );
            assert!((p.alt_m() - q.alt_m()).abs() < 1e-2);
        }
    }

    #[test]
    fn wgs84_equator_radius() {
        let p = GeodeticPoint::from_degrees(0.0, 0.0, 0.0).unwrap();
        let e = p.to_ecef_wgs84();
        assert!((e.radius_m() - earth::WGS84_A_M).abs() < 1e-6);
    }

    #[test]
    fn wgs84_pole_radius() {
        let p = GeodeticPoint::from_degrees(90.0, 0.0, 0.0).unwrap();
        let e = p.to_ecef_wgs84();
        assert!((e.radius_m() - earth::WGS84_B_M).abs() < 1e-6);
    }

    #[test]
    fn wgs84_polar_axis_round_trip() {
        let e = Ecef::new(0.0, 0.0, earth::WGS84_B_M + 1000.0);
        let p = e.to_geodetic_wgs84().unwrap();
        assert!((p.lat_deg() - 90.0).abs() < 1e-9);
        assert!((p.alt_m() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn center_of_earth_is_an_error() {
        assert!(Ecef::new(0.0, 0.0, 0.0).to_geodetic_spherical().is_err());
        assert!(Ecef::new(0.0, 0.0, 0.0).to_geodetic_wgs84().is_err());
    }

    #[test]
    fn display_formats() {
        let p = GeodeticPoint::from_degrees(1.0, 2.0, 3.0).unwrap();
        assert!(p.to_string().contains("°"));
        assert!(Ecef::new(1.0, 2.0, 3.0).to_string().starts_with("ECEF"));
    }
}
