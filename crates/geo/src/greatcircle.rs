//! Great-circle navigation on a spherical Earth.
//!
//! These routines implement the haversine distance, initial bearing, and
//! destination-point formulas. They are used for ground-track geometry,
//! swath membership tests, and moving-target propagation (airplanes and
//! ships follow great-circle routes in the dataset generators).

use crate::earth::MEAN_RADIUS_M;
use crate::{GeoError, GeodeticPoint};

/// Central angle between two points in radians, via the haversine formula
/// (stable for small separations).
///
/// ```
/// use eagleeye_geo::{GeodeticPoint, greatcircle};
/// let a = GeodeticPoint::from_degrees(0.0, 0.0, 0.0)?;
/// let b = GeodeticPoint::from_degrees(0.0, 90.0, 0.0)?;
/// let ang = greatcircle::central_angle_rad(&a, &b);
/// assert!((ang - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
/// # Ok::<(), eagleeye_geo::GeoError>(())
/// ```
pub fn central_angle_rad(a: &GeodeticPoint, b: &GeodeticPoint) -> f64 {
    let dlat = b.lat_rad() - a.lat_rad();
    let dlon = b.lon_rad() - a.lon_rad();
    let s1 = (dlat / 2.0).sin();
    let s2 = (dlon / 2.0).sin();
    let h = s1 * s1 + a.lat_rad().cos() * b.lat_rad().cos() * s2 * s2;
    2.0 * h.sqrt().clamp(-1.0, 1.0).asin()
}

/// Surface distance between two points in meters on the mean-radius sphere.
pub fn distance_m(a: &GeodeticPoint, b: &GeodeticPoint) -> f64 {
    central_angle_rad(a, b) * MEAN_RADIUS_M
}

/// Initial bearing from `a` to `b` in radians, clockwise from north, in
/// `[0, 2π)`. Returns `0.0` when the points are coincident.
pub fn initial_bearing_rad(a: &GeodeticPoint, b: &GeodeticPoint) -> f64 {
    let dlon = b.lon_rad() - a.lon_rad();
    let y = dlon.sin() * b.lat_rad().cos();
    let x =
        a.lat_rad().cos() * b.lat_rad().sin() - a.lat_rad().sin() * b.lat_rad().cos() * dlon.cos();
    if x.abs() < 1e-15 && y.abs() < 1e-15 {
        return 0.0;
    }
    crate::wrap_two_pi(y.atan2(x))
}

/// The point reached by traveling `distance_m` meters from `start` along
/// the great circle with initial bearing `bearing_rad` (clockwise from
/// north). The altitude of `start` is preserved.
///
/// # Errors
///
/// Propagates [`GeoError`] if the computed coordinates are invalid, which
/// only occurs for non-finite inputs.
pub fn destination(
    start: &GeodeticPoint,
    bearing_rad: f64,
    distance_m: f64,
) -> Result<GeodeticPoint, GeoError> {
    let delta = distance_m / MEAN_RADIUS_M;
    let (slat, clat) = start.lat_rad().sin_cos();
    let (sdel, cdel) = delta.sin_cos();
    let lat2 = (slat * cdel + clat * sdel * bearing_rad.cos())
        .clamp(-1.0, 1.0)
        .asin();
    let lon2 = start.lon_rad() + (bearing_rad.sin() * sdel * clat).atan2(cdel - slat * lat2.sin());
    GeodeticPoint::new(lat2, lon2, start.alt_m())
}

/// Cross-track distance in meters from point `p` to the great circle
/// through `a` with bearing `bearing_rad`. Positive values are to the
/// right of the track.
pub fn cross_track_distance_m(a: &GeodeticPoint, bearing_rad: f64, p: &GeodeticPoint) -> f64 {
    let d13 = central_angle_rad(a, p);
    let b13 = initial_bearing_rad(a, p);
    (d13.sin() * (b13 - bearing_rad).sin()).asin() * MEAN_RADIUS_M
}

/// Along-track distance in meters from `a` toward bearing `bearing_rad`
/// of the closest approach to point `p`.
pub fn along_track_distance_m(a: &GeodeticPoint, bearing_rad: f64, p: &GeodeticPoint) -> f64 {
    let d13 = central_angle_rad(a, p);
    let xt = cross_track_distance_m(a, bearing_rad, p) / MEAN_RADIUS_M;
    let cos_d13 = d13.cos();
    let cos_xt = xt.cos();
    if cos_xt.abs() < 1e-15 {
        return 0.0;
    }
    let ratio = (cos_d13 / cos_xt).clamp(-1.0, 1.0);
    let at = ratio.acos();
    // Sign: positive if p is ahead along the bearing.
    let b13 = initial_bearing_rad(a, p);
    let rel = crate::wrap_pi(b13 - bearing_rad);
    if rel.abs() <= std::f64::consts::FRAC_PI_2 {
        at * MEAN_RADIUS_M
    } else {
        -at * MEAN_RADIUS_M
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lat: f64, lon: f64) -> GeodeticPoint {
        GeodeticPoint::from_degrees(lat, lon, 0.0).unwrap()
    }

    #[test]
    fn distance_is_symmetric() {
        let a = pt(40.0, -80.0);
        let b = pt(34.0, -118.0);
        assert!((distance_m(&a, &b) - distance_m(&b, &a)).abs() < 1e-6);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = pt(12.3, 45.6);
        assert_eq!(distance_m(&a, &a), 0.0);
    }

    #[test]
    fn quarter_circumference_along_equator() {
        let a = pt(0.0, 0.0);
        let b = pt(0.0, 90.0);
        let quarter = std::f64::consts::FRAC_PI_2 * MEAN_RADIUS_M;
        assert!((distance_m(&a, &b) - quarter).abs() < 1.0);
    }

    #[test]
    fn bearing_due_north_and_east() {
        let a = pt(0.0, 0.0);
        assert!((initial_bearing_rad(&a, &pt(10.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!(
            (initial_bearing_rad(&a, &pt(0.0, 10.0)) - std::f64::consts::FRAC_PI_2).abs() < 1e-12
        );
    }

    #[test]
    fn bearing_of_coincident_points_is_zero() {
        let a = pt(10.0, 10.0);
        assert_eq!(initial_bearing_rad(&a, &a), 0.0);
    }

    #[test]
    fn destination_round_trip() {
        let a = pt(40.0, -80.0);
        let bearing = 1.0;
        let dist = 500_000.0;
        let b = destination(&a, bearing, dist).unwrap();
        assert!((distance_m(&a, &b) - dist).abs() < 1.0);
        let back = initial_bearing_rad(&b, &a);
        let fwd = initial_bearing_rad(&a, &b);
        // The reverse bearing differs from fwd+pi only by convergence of
        // meridians; for a 500 km leg it is within a few degrees.
        let diff = crate::wrap_pi(back - fwd - std::f64::consts::PI);
        assert!(diff.abs() < 0.2, "diff = {diff}");
    }

    #[test]
    fn destination_preserves_altitude() {
        let a = GeodeticPoint::from_degrees(10.0, 10.0, 475_000.0).unwrap();
        let b = destination(&a, 0.5, 100_000.0).unwrap();
        assert_eq!(b.alt_m(), 475_000.0);
    }

    #[test]
    fn cross_track_sign_convention() {
        // Track heading due north along lon=0; a point to the east is to the
        // right (positive).
        let a = pt(0.0, 0.0);
        let east = pt(1.0, 1.0);
        let west = pt(1.0, -1.0);
        assert!(cross_track_distance_m(&a, 0.0, &east) > 0.0);
        assert!(cross_track_distance_m(&a, 0.0, &west) < 0.0);
    }

    #[test]
    fn along_track_sign_convention() {
        let a = pt(0.0, 0.0);
        let ahead = pt(2.0, 0.1);
        let behind = pt(-2.0, 0.1);
        assert!(along_track_distance_m(&a, 0.0, &ahead) > 0.0);
        assert!(along_track_distance_m(&a, 0.0, &behind) < 0.0);
    }

    #[test]
    fn along_plus_cross_decomposition() {
        // For a point near the track, along² + cross² ≈ distance² (flat
        // approximation valid for short distances).
        let a = pt(0.0, 0.0);
        let p = pt(0.5, 0.1);
        let d = distance_m(&a, &p);
        let at = along_track_distance_m(&a, 0.0, &p);
        let xt = cross_track_distance_m(&a, 0.0, &p);
        let recon = (at * at + xt * xt).sqrt();
        assert!((recon - d).abs() / d < 1e-4);
    }
}
