use crate::earth::MEAN_RADIUS_M;
use crate::{greatcircle, GeoError, GeodeticPoint};

/// A local tangent frame anchored at a ground point with a heading.
///
/// The frame's **y axis** points along the heading ("along-track") and its
/// **x axis** points 90° clockwise of the heading ("cross-track", to the
/// right of travel). Points are projected with an azimuthal-equidistant
/// projection, which preserves distances from the origin and is accurate
/// to a fraction of a percent over the few-hundred-kilometer scales a
/// satellite frame spans.
///
/// This is the flat-Earth plane in which the paper computes actuation
/// angles (Eq. 1), time windows (Eq. 2), and target clustering (§4.1).
///
/// # Example
///
/// ```
/// use eagleeye_geo::{GeodeticPoint, LocalFrame};
///
/// let origin = GeodeticPoint::from_degrees(0.0, 0.0, 0.0)?;
/// let frame = LocalFrame::new(origin, 0.0); // heading north
/// let north = GeodeticPoint::from_degrees(0.5, 0.0, 0.0)?;
/// let (x, y) = frame.project(&north);
/// assert!(x.abs() < 1.0);      // on-track
/// assert!(y > 50_000.0);       // ~55 km ahead
/// # Ok::<(), eagleeye_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalFrame {
    origin: GeodeticPoint,
    heading_rad: f64,
}

impl LocalFrame {
    /// Creates a frame at `origin` with `heading_rad` clockwise from north.
    pub fn new(origin: GeodeticPoint, heading_rad: f64) -> Self {
        LocalFrame {
            origin,
            heading_rad: crate::wrap_two_pi(heading_rad),
        }
    }

    /// The anchor point of the frame.
    #[inline]
    pub fn origin(&self) -> GeodeticPoint {
        self.origin
    }

    /// The frame heading, clockwise from north, in `[0, 2π)`.
    #[inline]
    pub fn heading_rad(&self) -> f64 {
        self.heading_rad
    }

    /// Projects a geodetic point into the frame, returning
    /// `(cross_track_m, along_track_m)`.
    pub fn project(&self, p: &GeodeticPoint) -> (f64, f64) {
        let d = greatcircle::central_angle_rad(&self.origin, p) * MEAN_RADIUS_M;
        if d < 1e-9 {
            return (0.0, 0.0);
        }
        let bearing = greatcircle::initial_bearing_rad(&self.origin, p);
        let rel = bearing - self.heading_rad;
        (d * rel.sin(), d * rel.cos())
    }

    /// Inverse of [`LocalFrame::project`]: maps frame coordinates
    /// `(cross_track_m, along_track_m)` back to a geodetic point at the
    /// origin's altitude.
    ///
    /// # Errors
    ///
    /// Propagates [`GeoError`] for non-finite inputs.
    pub fn unproject(&self, x_m: f64, y_m: f64) -> Result<GeodeticPoint, GeoError> {
        let d = (x_m * x_m + y_m * y_m).sqrt();
        if d < 1e-9 {
            return Ok(self.origin);
        }
        let rel = x_m.atan2(y_m);
        greatcircle::destination(&self.origin, self.heading_rad + rel, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lat: f64, lon: f64) -> GeodeticPoint {
        GeodeticPoint::from_degrees(lat, lon, 0.0).unwrap()
    }

    #[test]
    fn origin_projects_to_zero() {
        let f = LocalFrame::new(pt(10.0, 20.0), 1.2);
        assert_eq!(f.project(&pt(10.0, 20.0)), (0.0, 0.0));
    }

    #[test]
    fn along_track_is_positive_ahead() {
        let f = LocalFrame::new(pt(0.0, 0.0), 0.0);
        let (x, y) = f.project(&pt(1.0, 0.0));
        assert!(x.abs() < 1e-6);
        assert!(y > 100_000.0);
    }

    #[test]
    fn cross_track_is_positive_right() {
        let f = LocalFrame::new(pt(0.0, 0.0), 0.0);
        let (x, _) = f.project(&pt(0.0, 1.0));
        assert!(x > 100_000.0);
    }

    #[test]
    fn rotated_heading_swaps_axes() {
        // Heading east: a point to the east is now along-track.
        let f = LocalFrame::new(pt(0.0, 0.0), std::f64::consts::FRAC_PI_2);
        let (x, y) = f.project(&pt(0.0, 1.0));
        assert!(x.abs() < 1.0);
        assert!(y > 100_000.0);
    }

    #[test]
    fn project_unproject_round_trip() {
        let f = LocalFrame::new(pt(45.0, -93.0), 0.7);
        for &(x, y) in &[(0.0, 0.0), (50_000.0, 10_000.0), (-30_000.0, 200_000.0)] {
            let p = f.unproject(x, y).unwrap();
            let (x2, y2) = f.project(&p);
            assert!((x - x2).abs() < 1.0, "x: {x} vs {x2}");
            assert!((y - y2).abs() < 1.0, "y: {y} vs {y2}");
        }
    }

    #[test]
    fn projection_distance_is_preserved() {
        // Azimuthal equidistant: |projected| equals great-circle distance.
        let f = LocalFrame::new(pt(30.0, 50.0), 2.0);
        let p = pt(31.0, 51.0);
        let (x, y) = f.project(&p);
        let d = greatcircle::distance_m(&f.origin(), &p);
        assert!(((x * x + y * y).sqrt() - d).abs() < 1e-6);
    }
}
