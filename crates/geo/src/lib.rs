//! Earth geometry and geodesy substrate for the EagleEye constellation
//! simulator.
//!
//! This crate provides the low-level geometric vocabulary used by every
//! other crate in the workspace:
//!
//! * [`Vec3`] — a small, `Copy` 3-vector with the usual linear-algebra
//!   operations.
//! * [`GeodeticPoint`] and [`Ecef`] — geodetic (latitude / longitude /
//!   altitude) and Earth-centered Earth-fixed Cartesian coordinates, with
//!   exact conversions on both a spherical Earth and the WGS-84 ellipsoid
//!   (see [`earth`]).
//! * Great-circle utilities ([`greatcircle`]) — haversine distance,
//!   bearings, and destination points.
//! * [`LocalFrame`] — an east-north-up tangent frame used to project
//!   satellite frames onto a local plane, matching the flat-Earth
//!   approximations in the paper's Eq. (1) and Eq. (2).
//! * [`GroundRect`] — an axis-aligned rectangle in a local tangent frame,
//!   the footprint model for image captures.
//! * [`GridIndex`] — a uniform latitude/longitude bucket index able to
//!   answer swath-membership queries over millions of targets (the paper's
//!   1.4 M-lake workload) in time proportional to the answer.
//!
//! # Example
//!
//! ```
//! use eagleeye_geo::{GeodeticPoint, greatcircle};
//!
//! let pittsburgh = GeodeticPoint::from_degrees(40.44, -79.99, 0.0)?;
//! let la = GeodeticPoint::from_degrees(34.05, -118.24, 0.0)?;
//! let d = greatcircle::distance_m(&pittsburgh, &la);
//! assert!((d - 3_460_000.0).abs() < 50_000.0);
//! # Ok::<(), eagleeye_geo::GeoError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod earth;
mod error;
mod frame;
pub mod greatcircle;
mod grid;
mod point;
mod rect;
mod vec3;

pub use error::GeoError;
pub use frame::LocalFrame;
pub use grid::GridIndex;
pub use point::{Ecef, GeodeticPoint};
pub use rect::GroundRect;
pub use vec3::Vec3;

/// Converts degrees to radians.
///
/// ```
/// assert!((eagleeye_geo::deg_to_rad(180.0) - std::f64::consts::PI).abs() < 1e-12);
/// ```
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg.to_radians()
}

/// Converts radians to degrees.
///
/// ```
/// assert!((eagleeye_geo::rad_to_deg(std::f64::consts::PI) - 180.0).abs() < 1e-12);
/// ```
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad.to_degrees()
}

/// Normalizes an angle in radians into the half-open interval `[0, 2π)`.
///
/// ```
/// use std::f64::consts::PI;
/// let a = eagleeye_geo::wrap_two_pi(-PI / 2.0);
/// assert!((a - 1.5 * PI).abs() < 1e-12);
/// ```
#[inline]
pub fn wrap_two_pi(rad: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut a = rad % two_pi;
    if a < 0.0 {
        a += two_pi;
    }
    a
}

/// Normalizes an angle in radians into `(-π, π]`.
///
/// ```
/// use std::f64::consts::PI;
/// let a = eagleeye_geo::wrap_pi(1.5 * PI);
/// assert!((a + 0.5 * PI).abs() < 1e-12);
/// ```
#[inline]
pub fn wrap_pi(rad: f64) -> f64 {
    let mut a = wrap_two_pi(rad);
    if a > std::f64::consts::PI {
        a -= std::f64::consts::TAU;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_two_pi_is_idempotent_on_small_angles() {
        for &a in &[0.0, 0.1, 3.0, 6.2] {
            assert!((wrap_two_pi(a) - a).abs() < 1e-12);
        }
    }

    #[test]
    fn wrap_pi_handles_boundaries() {
        assert!((wrap_pi(std::f64::consts::PI) - std::f64::consts::PI).abs() < 1e-12);
        assert!(wrap_pi(-std::f64::consts::PI) > 0.0);
    }
}
