//! Physical constants for the Earth models used throughout the workspace.
//!
//! Two Earth models are supported:
//!
//! * **Spherical** — a sphere of radius [`MEAN_RADIUS_M`]. The paper's
//!   geometric derivations (off-nadir angle, swath width, actuation time)
//!   all use a locally flat / spherical model, so the coverage simulator
//!   uses this model.
//! * **WGS-84 ellipsoid** — used for geodetic conversions where an
//!   application needs real-world coordinates (e.g. geo-registration of
//!   captured frames).

/// Mean Earth radius in meters (IUGG mean radius R1).
pub const MEAN_RADIUS_M: f64 = 6_371_008.8;

/// WGS-84 semi-major axis (equatorial radius) in meters.
pub const WGS84_A_M: f64 = 6_378_137.0;

/// WGS-84 flattening.
pub const WGS84_F: f64 = 1.0 / 298.257_223_563;

/// WGS-84 semi-minor axis (polar radius) in meters.
pub const WGS84_B_M: f64 = WGS84_A_M * (1.0 - WGS84_F);

/// WGS-84 first eccentricity squared.
pub const WGS84_E2: f64 = WGS84_F * (2.0 - WGS84_F);

/// Standard gravitational parameter of the Earth, m³/s².
pub const MU_M3_S2: f64 = 3.986_004_418e14;

/// Second zonal harmonic of the Earth's gravity field (J2).
pub const J2: f64 = 1.082_626_68e-3;

/// Earth's rotation rate in radians per second (sidereal).
pub const OMEGA_EARTH_RAD_S: f64 = 7.292_115_146_706_979e-5;

/// Seconds in one solar day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// Total surface area of the Earth in square kilometers (~510 M km²,
/// quoted in the paper §2.3).
pub const SURFACE_AREA_KM2: f64 =
    4.0 * std::f64::consts::PI * (MEAN_RADIUS_M / 1000.0) * (MEAN_RADIUS_M / 1000.0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wgs84_b_is_consistent() {
        assert!((WGS84_B_M - 6_356_752.314_245).abs() < 1e-3);
    }

    #[test]
    fn eccentricity_squared_matches_reference() {
        assert!((WGS84_E2 - 6.694_379_990_14e-3).abs() < 1e-12);
    }

    #[test]
    fn surface_area_is_about_510_million_km2() {
        assert!((SURFACE_AREA_KM2 - 5.10e8).abs() < 0.02e8);
    }
}
