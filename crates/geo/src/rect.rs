use crate::GeoError;
use std::fmt;

/// An axis-aligned rectangle in a local tangent frame, in meters.
///
/// `GroundRect` models an image footprint on the ground: the leader's
/// low-resolution frame, a follower's high-resolution capture, or a
/// clustering candidate box. Coordinates are `(cross_track, along_track)`
/// pairs produced by [`crate::LocalFrame::project`].
///
/// The rectangle is closed: points on the boundary are contained. This
/// matches the paper's constraint C3 (`tloc ∈ Image(...)`).
///
/// # Example
///
/// ```
/// use eagleeye_geo::GroundRect;
///
/// // A 10 km x 10 km high-resolution footprint centered at the origin.
/// let r = GroundRect::centered(0.0, 0.0, 10_000.0, 10_000.0)?;
/// assert!(r.contains(4_999.0, -4_999.0));
/// assert!(!r.contains(5_001.0, 0.0));
/// # Ok::<(), eagleeye_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundRect {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
}

impl GroundRect {
    /// Creates a rectangle from its minimum corner and dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::DegenerateRect`] when either dimension is not
    /// strictly positive or not finite.
    pub fn from_min_corner(
        min_x: f64,
        min_y: f64,
        width_m: f64,
        height_m: f64,
    ) -> Result<Self, GeoError> {
        if !(width_m > 0.0) || !(height_m > 0.0) || !width_m.is_finite() || !height_m.is_finite() {
            return Err(GeoError::DegenerateRect { width_m, height_m });
        }
        Ok(GroundRect {
            min_x,
            min_y,
            max_x: min_x + width_m,
            max_y: min_y + height_m,
        })
    }

    /// Creates a rectangle from its center and dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::DegenerateRect`] when either dimension is not
    /// strictly positive or not finite.
    pub fn centered(cx: f64, cy: f64, width_m: f64, height_m: f64) -> Result<Self, GeoError> {
        Self::from_min_corner(cx - width_m / 2.0, cy - height_m / 2.0, width_m, height_m)
    }

    /// Minimum-x (left) edge.
    #[inline]
    pub fn min_x(&self) -> f64 {
        self.min_x
    }

    /// Minimum-y (bottom) edge.
    #[inline]
    pub fn min_y(&self) -> f64 {
        self.min_y
    }

    /// Maximum-x (right) edge.
    #[inline]
    pub fn max_x(&self) -> f64 {
        self.max_x
    }

    /// Maximum-y (top) edge.
    #[inline]
    pub fn max_y(&self) -> f64 {
        self.max_y
    }

    /// Width in meters.
    #[inline]
    pub fn width_m(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height in meters.
    #[inline]
    pub fn height_m(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Center `(x, y)` in meters.
    #[inline]
    pub fn center(&self) -> (f64, f64) {
        (
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Area in square meters.
    #[inline]
    pub fn area_m2(&self) -> f64 {
        self.width_m() * self.height_m()
    }

    /// True when `(x, y)` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.min_x && x <= self.max_x && y >= self.min_y && y <= self.max_y
    }

    /// True when the two rectangles overlap (closed intersection).
    #[inline]
    pub fn intersects(&self, other: &GroundRect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Returns this rectangle translated by `(dx, dy)`.
    #[inline]
    pub fn translated(&self, dx: f64, dy: f64) -> GroundRect {
        GroundRect {
            min_x: self.min_x + dx,
            min_y: self.min_y + dy,
            max_x: self.max_x + dx,
            max_y: self.max_y + dy,
        }
    }

    /// Maps the rectangle's corners through a [`crate::LocalFrame`] into
    /// geodetic coordinates, in counter-clockwise order starting from the
    /// minimum corner — the geo-registration step for a captured frame.
    ///
    /// # Errors
    ///
    /// Propagates [`GeoError`] for non-finite coordinates.
    pub fn corners_geodetic(
        &self,
        frame: &crate::LocalFrame,
    ) -> Result<[crate::GeodeticPoint; 4], GeoError> {
        Ok([
            frame.unproject(self.min_x, self.min_y)?,
            frame.unproject(self.max_x, self.min_y)?,
            frame.unproject(self.max_x, self.max_y)?,
            frame.unproject(self.min_x, self.max_y)?,
        ])
    }
}

impl fmt::Display for GroundRect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.1}, {:.1}] x [{:.1}, {:.1}] m",
            self.min_x, self.max_x, self.min_y, self.max_y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_dimensions() {
        assert!(GroundRect::centered(0.0, 0.0, 0.0, 10.0).is_err());
        assert!(GroundRect::centered(0.0, 0.0, 10.0, -1.0).is_err());
        assert!(GroundRect::centered(0.0, 0.0, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn contains_boundary_points() {
        let r = GroundRect::centered(0.0, 0.0, 10.0, 20.0).unwrap();
        assert!(r.contains(5.0, 10.0));
        assert!(r.contains(-5.0, -10.0));
        assert!(!r.contains(5.000001, 0.0));
    }

    #[test]
    fn center_and_dims_round_trip() {
        let r = GroundRect::centered(3.0, -4.0, 10.0, 6.0).unwrap();
        assert_eq!(r.center(), (3.0, -4.0));
        assert_eq!(r.width_m(), 10.0);
        assert_eq!(r.height_m(), 6.0);
        assert_eq!(r.area_m2(), 60.0);
    }

    #[test]
    fn intersection_cases() {
        let a = GroundRect::from_min_corner(0.0, 0.0, 10.0, 10.0).unwrap();
        let b = GroundRect::from_min_corner(5.0, 5.0, 10.0, 10.0).unwrap();
        let c = GroundRect::from_min_corner(20.0, 20.0, 1.0, 1.0).unwrap();
        let touch = GroundRect::from_min_corner(10.0, 0.0, 5.0, 5.0).unwrap();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&touch)); // closed edges touch
    }

    #[test]
    fn geodetic_corners_have_the_right_extent() {
        let origin = crate::GeodeticPoint::from_degrees(10.0, 20.0, 0.0).unwrap();
        let frame = crate::LocalFrame::new(origin, 0.3);
        let r = GroundRect::centered(0.0, 0.0, 10_000.0, 10_000.0).unwrap();
        let corners = r.corners_geodetic(&frame).unwrap();
        // Diagonal corners are ~sqrt(2) * 10 km apart.
        let diag = crate::greatcircle::distance_m(&corners[0], &corners[2]);
        assert!((diag - 14_142.0).abs() < 50.0, "diag {diag}");
        // Adjacent corners are ~10 km apart.
        let side = crate::greatcircle::distance_m(&corners[0], &corners[1]);
        assert!((side - 10_000.0).abs() < 50.0, "side {side}");
    }

    #[test]
    fn translation_moves_bounds() {
        let r = GroundRect::from_min_corner(0.0, 0.0, 2.0, 2.0)
            .unwrap()
            .translated(1.0, -1.0);
        assert_eq!(r.min_x(), 1.0);
        assert_eq!(r.min_y(), -1.0);
        assert_eq!(r.max_x(), 3.0);
        assert_eq!(r.max_y(), 1.0);
    }
}
