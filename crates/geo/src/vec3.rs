use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A three-component double-precision vector.
///
/// `Vec3` is the Cartesian workhorse of the workspace: ECI/ECEF positions,
/// velocities, and pointing directions are all `Vec3`s. It is `Copy` and all
/// operations are implemented by value.
///
/// # Example
///
/// ```
/// use eagleeye_geo::Vec3;
///
/// let x = Vec3::new(1.0, 0.0, 0.0);
/// let y = Vec3::new(0.0, 1.0, 0.0);
/// assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
/// assert!((x.angle_to(y) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean norm (length).
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm; cheaper than [`Vec3::norm`] when only
    /// comparisons are needed.
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Returns a unit vector in the same direction, or `None` for a vector
    /// too close to zero to normalize reliably.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-30 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Angle between `self` and `other` in radians, in `[0, π]`.
    ///
    /// Computed with `atan2(‖a×b‖, a·b)`, which is numerically stable for
    /// nearly parallel and nearly antiparallel vectors (unlike the naive
    /// `acos` formulation).
    #[inline]
    pub fn angle_to(self, other: Vec3) -> f64 {
        self.cross(other).norm().atan2(self.dot(other))
    }

    /// Distance between two points.
    #[inline]
    pub fn distance_to(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Componentwise linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6}, {:.6})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn dot_of_orthogonal_is_zero() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
    }

    #[test]
    fn cross_follows_right_hand_rule() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        assert_eq!(y.cross(x), -z);
    }

    #[test]
    fn norm_of_pythagorean_triple() {
        assert!((Vec3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < EPS);
    }

    #[test]
    fn normalized_returns_unit_vector() {
        let v = Vec3::new(1.0, 2.0, -2.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn angle_to_is_stable_for_nearly_parallel() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(1.0, 1e-9, 0.0);
        let ang = a.angle_to(b);
        assert!(ang > 0.0 && ang < 2e-9);
    }

    #[test]
    fn angle_to_antiparallel_is_pi() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        assert!((a.angle_to(-a) - std::f64::consts::PI).abs() < EPS);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 8.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 4.0));
    }

    #[test]
    fn arithmetic_assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v, Vec3::new(2.0, 3.0, 4.0));
        v -= Vec3::new(2.0, 3.0, 4.0);
        assert_eq!(v, Vec3::ZERO);
    }

    #[test]
    fn scalar_mul_is_commutative() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(v * 2.0, 2.0 * v);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Vec3::ZERO).is_empty());
    }
}
