use std::error::Error;
use std::fmt;

/// Errors produced by geometric constructors and conversions.
///
/// All validation in this crate is dynamic: constructors such as
/// [`crate::GeodeticPoint::new`] check their arguments and return
/// `Err(GeoError::...)` rather than silently producing a point off the
/// globe.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeoError {
    /// A latitude outside `[-π/2, π/2]` radians (±90°).
    LatitudeOutOfRange {
        /// Offending latitude in radians.
        lat_rad: f64,
    },
    /// A longitude that is not finite.
    LongitudeNotFinite {
        /// Offending longitude in radians.
        lon_rad: f64,
    },
    /// An altitude below the center of the Earth or not finite.
    AltitudeInvalid {
        /// Offending altitude in meters.
        alt_m: f64,
    },
    /// A rectangle with non-positive width or height.
    DegenerateRect {
        /// Requested width in meters.
        width_m: f64,
        /// Requested height in meters.
        height_m: f64,
    },
    /// A grid index cell size that is not strictly positive.
    InvalidCellSize {
        /// Offending cell size in degrees.
        cell_deg: f64,
    },
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::LatitudeOutOfRange { lat_rad } => {
                write!(f, "latitude {lat_rad} rad is outside [-pi/2, pi/2]")
            }
            GeoError::LongitudeNotFinite { lon_rad } => {
                write!(f, "longitude {lon_rad} rad is not finite")
            }
            GeoError::AltitudeInvalid { alt_m } => {
                write!(f, "altitude {alt_m} m is invalid")
            }
            GeoError::DegenerateRect { width_m, height_m } => {
                write!(f, "rectangle {width_m} m x {height_m} m is degenerate")
            }
            GeoError::InvalidCellSize { cell_deg } => {
                write!(f, "grid cell size {cell_deg} deg must be positive")
            }
        }
    }
}

impl Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = [
            GeoError::LatitudeOutOfRange { lat_rad: 4.0 },
            GeoError::LongitudeNotFinite { lon_rad: f64::NAN },
            GeoError::AltitudeInvalid {
                alt_m: f64::INFINITY,
            },
            GeoError::DegenerateRect {
                width_m: 0.0,
                height_m: 1.0,
            },
            GeoError::InvalidCellSize { cell_deg: -1.0 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeoError>();
    }
}
