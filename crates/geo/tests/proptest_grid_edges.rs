//! Differential tests for `GridIndex` edge geometry: dateline-crossing
//! and near-pole queries checked against a brute-force linear scan, on
//! the `eagleeye-check` harness (seed replay via `EAGLEEYE_CHECK_SEED`,
//! shrinking on failure).
//!
//! `query_radius` is exact, so it must equal the brute-force result
//! bit-for-bit. `query_bbox` is a cell-granularity superset, so the
//! brute-force in-box set must be contained in it — precisely the
//! contract the coverage compiler's candidate pruning relies on
//! (DESIGN.md §13).

use eagleeye_check::{check_cases, f64_range, prop_assert, prop_assert_eq, vec_of, Gen};
use eagleeye_geo::{greatcircle, GeodeticPoint, GridIndex};

const CASES: u32 = 96;

/// Points clustered where the grid math is most fragile: both sides of
/// the antimeridian and both polar caps, plus a mid-latitude control.
fn edge_point_gen() -> impl Gen<Value = GeodeticPoint> {
    (
        f64_range(0.0, 5.0),
        f64_range(-89.999, 89.999),
        f64_range(-179.999, 179.999),
    )
        .map(|(region, lat, lon)| {
            let (lat, lon) = match region as u32 {
                // Hug the dateline on either side.
                0 => (lat, 179.0 + (lon + 180.0) / 360.0),
                1 => (lat, -180.0 + (lon + 180.0) / 360.0),
                // Polar caps.
                2 => (88.0 + (lat + 90.0) / 90.0, lon),
                3 => (-90.0 + (lat + 90.0) / 90.0, lon),
                // Control: anywhere.
                _ => (lat, lon),
            };
            GeodeticPoint::from_degrees(lat.clamp(-90.0, 90.0), lon, 0.0).expect("valid")
        })
}

fn brute_force_radius(pts: &[GeodeticPoint], center: &GeodeticPoint, radius_m: f64) -> Vec<usize> {
    (0..pts.len())
        .filter(|&i| greatcircle::distance_m(center, &pts[i]) <= radius_m)
        .collect()
}

/// `query_radius` equals brute force exactly for dateline/pole centers.
#[test]
fn query_radius_matches_brute_force_at_edges() {
    check_cases(
        CASES,
        "query_radius_matches_brute_force_at_edges",
        (
            vec_of(edge_point_gen(), 1, 64),
            edge_point_gen(),
            f64_range(1_000.0, 2_000_000.0),
            f64_range(0.25, 8.0),
        ),
        |(pts, center, radius_m, cell_deg)| {
            let index = GridIndex::build(*cell_deg, pts.iter().map(|p| (p.lat_deg(), p.lon_deg())))
                .expect("valid cell size");
            let got = index.query_radius(center, *radius_m, |i| pts[i]);
            let want = brute_force_radius(pts, center, *radius_m);
            prop_assert_eq!(got, want);
            Ok(())
        },
    );
}

/// A cap that swallows a pole must return every point at qualifying
/// latitude regardless of longitude.
#[test]
fn query_radius_pole_cap_ignores_longitude() {
    check_cases(
        CASES,
        "query_radius_pole_cap_ignores_longitude",
        (
            vec_of(edge_point_gen(), 1, 64),
            f64_range(86.0, 90.0),
            f64_range(200_000.0, 3_000_000.0),
        ),
        |(pts, center_lat, radius_m)| {
            let center = GeodeticPoint::from_degrees(*center_lat, 123.4, 0.0).expect("valid");
            let index = GridIndex::build(2.0, pts.iter().map(|p| (p.lat_deg(), p.lon_deg())))
                .expect("valid cell size");
            let got = index.query_radius(&center, *radius_m, |i| pts[i]);
            let want = brute_force_radius(pts, &center, *radius_m);
            prop_assert_eq!(got, want);
            Ok(())
        },
    );
}

/// In-box membership under the index's wraparound convention:
/// `lon_min > lon_max` means the box spans the antimeridian.
fn in_box(p: &GeodeticPoint, lat_min: f64, lat_max: f64, lon_min: f64, lon_max: f64) -> bool {
    let lat_ok = p.lat_deg() >= lat_min && p.lat_deg() <= lat_max;
    let lon = p.lon_deg();
    let lon_ok = if lon_min <= lon_max {
        lon >= lon_min && lon <= lon_max
    } else {
        lon >= lon_min || lon <= lon_max
    };
    lat_ok && lon_ok
}

/// `query_bbox` is a superset of the exact in-box set, including for
/// boxes that wrap the antimeridian.
#[test]
fn query_bbox_wrapping_is_superset_of_brute_force() {
    check_cases(
        CASES,
        "query_bbox_wrapping_is_superset_of_brute_force",
        (
            vec_of(edge_point_gen(), 1, 64),
            f64_range(-89.0, 80.0),
            f64_range(0.5, 20.0),
            f64_range(-180.0, 180.0),
            f64_range(0.5, 40.0),
            f64_range(0.25, 8.0),
        ),
        |(pts, lat_min, dlat, lon_min, dlon, cell_deg)| {
            let lat_max = (lat_min + dlat).min(90.0);
            // Wrap on purpose when lon_min + dlon crosses 180.
            let lon_max = {
                let m = lon_min + dlon;
                if m > 180.0 {
                    m - 360.0
                } else {
                    m
                }
            };
            let index = GridIndex::build(*cell_deg, pts.iter().map(|p| (p.lat_deg(), p.lon_deg())))
                .expect("valid cell size");
            let got = index.query_bbox(*lat_min, lat_max, *lon_min, lon_max);
            for i in 0..pts.len() {
                if in_box(&pts[i], *lat_min, lat_max, *lon_min, lon_max) {
                    prop_assert!(
                        got.binary_search(&i).is_ok(),
                        "point {i} ({}, {}) inside box \
                         [{lat_min}, {lat_max}] x [{lon_min}, {lon_max}] but missing \
                         (cell_deg {cell_deg})",
                        pts[i].lat_deg(),
                        pts[i].lon_deg(),
                    );
                }
            }
            Ok(())
        },
    );
}

/// Pinned regressions: a handful of deterministic edge cases that stay
/// fixed regardless of the harness seed.
#[test]
fn pinned_edge_cases() {
    // Two points straddling the dateline, 0.2° apart (~22 km).
    let pts = [
        GeodeticPoint::from_degrees(10.0, 179.9, 0.0).unwrap(),
        GeodeticPoint::from_degrees(10.0, -179.9, 0.0).unwrap(),
        GeodeticPoint::from_degrees(10.0, 0.0, 0.0).unwrap(),
    ];
    let index = GridIndex::build(1.0, pts.iter().map(|p| (p.lat_deg(), p.lon_deg()))).unwrap();
    let hits = index.query_radius(&pts[0], 50_000.0, |i| pts[i]);
    assert_eq!(hits, vec![0, 1], "dateline neighbors must see each other");

    // A box wrapping the antimeridian catches both, not the control.
    let boxed = index.query_bbox(9.0, 11.0, 179.0, -179.0);
    assert!(boxed.contains(&0) && boxed.contains(&1) && !boxed.contains(&2));

    // A 500 km cap centered 1° off the north pole sees every longitude.
    let polar: Vec<GeodeticPoint> = (0..12)
        .map(|k| GeodeticPoint::from_degrees(89.5, -180.0 + 30.0 * k as f64, 0.0).unwrap())
        .collect();
    let index = GridIndex::build(3.0, polar.iter().map(|p| (p.lat_deg(), p.lon_deg()))).unwrap();
    let center = GeodeticPoint::from_degrees(89.0, 45.0, 0.0).unwrap();
    let got = index.query_radius(&center, 500_000.0, |i| polar[i]);
    let want = brute_force_radius(&polar, &center, 500_000.0);
    assert_eq!(got, want);
    assert!(!got.is_empty(), "polar cap query must not come back empty");
}
