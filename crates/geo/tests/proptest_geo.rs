//! Property-based tests for the geometry substrate.

use eagleeye_geo::{greatcircle, GeodeticPoint, GridIndex, LocalFrame};
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = GeodeticPoint> {
    (-89.0f64..89.0, -179.9f64..179.9)
        .prop_map(|(lat, lon)| GeodeticPoint::from_degrees(lat, lon, 0.0).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// WGS-84 geodetic <-> ECEF round trip.
    #[test]
    fn wgs84_round_trip(lat in -89.9f64..89.9, lon in -180.0f64..180.0, alt in 0.0f64..1e6) {
        let p = GeodeticPoint::from_degrees(lat, lon, alt).expect("valid");
        let q = p.to_ecef_wgs84().to_geodetic_wgs84().expect("convertible");
        prop_assert!((p.lat_deg() - q.lat_deg()).abs() < 1e-6);
        prop_assert!((p.alt_m() - q.alt_m()).abs() < 0.1);
    }

    /// Spherical geodetic <-> ECEF round trip.
    #[test]
    fn spherical_round_trip(lat in -90.0f64..90.0, lon in -180.0f64..180.0, alt in 0.0f64..1e6) {
        let p = GeodeticPoint::from_degrees(lat, lon, alt).expect("valid");
        let q = p.to_ecef_spherical().to_geodetic_spherical().expect("convertible");
        prop_assert!((p.lat_deg() - q.lat_deg()).abs() < 1e-7);
        prop_assert!((p.alt_m() - q.alt_m()).abs() < 1e-3);
    }

    /// Great-circle distance is symmetric and satisfies the triangle
    /// inequality.
    #[test]
    fn distance_metric_properties(a in point_strategy(), b in point_strategy(), c in point_strategy()) {
        let ab = greatcircle::distance_m(&a, &b);
        let ba = greatcircle::distance_m(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-6);
        let ac = greatcircle::distance_m(&a, &c);
        let cb = greatcircle::distance_m(&c, &b);
        prop_assert!(ab <= ac + cb + 1e-6);
        prop_assert!(ab >= 0.0);
    }

    /// Traveling `d` along any bearing lands exactly `d` away.
    #[test]
    fn destination_distance_is_exact(
        start in point_strategy(),
        bearing in 0.0f64..std::f64::consts::TAU,
        dist in 0.0f64..5_000_000.0,
    ) {
        let end = greatcircle::destination(&start, bearing, dist).expect("valid");
        let measured = greatcircle::distance_m(&start, &end);
        prop_assert!((measured - dist).abs() < 1.0, "{measured} vs {dist}");
    }

    /// Local-frame projection round-trips.
    #[test]
    fn frame_project_unproject(
        origin in point_strategy(),
        heading in 0.0f64..std::f64::consts::TAU,
        x in -200_000.0f64..200_000.0,
        y in -200_000.0f64..200_000.0,
    ) {
        let frame = LocalFrame::new(origin, heading);
        let p = frame.unproject(x, y).expect("valid");
        let (x2, y2) = frame.project(&p);
        prop_assert!((x - x2).abs() < 1.0, "x {x} vs {x2}");
        prop_assert!((y - y2).abs() < 1.0, "y {y} vs {y2}");
    }

    /// Grid-index radius queries agree with brute force.
    #[test]
    fn grid_index_matches_brute_force(
        pts in proptest::collection::vec((-80.0f64..80.0, -180.0f64..180.0), 1..80),
        center in point_strategy(),
        radius_km in 10.0f64..3_000.0,
    ) {
        let points: Vec<GeodeticPoint> = pts
            .into_iter()
            .map(|(lat, lon)| GeodeticPoint::from_degrees(lat, lon, 0.0).expect("valid"))
            .collect();
        let idx = GridIndex::build(2.0, points.iter().map(|p| (p.lat_deg(), p.lon_deg())))
            .expect("valid index");
        let radius = radius_km * 1000.0;
        let got = idx.query_radius(&center, radius, |i| points[i]);
        let want: Vec<usize> = (0..points.len())
            .filter(|&i| greatcircle::distance_m(&center, &points[i]) <= radius)
            .collect();
        prop_assert_eq!(got, want);
    }
}
