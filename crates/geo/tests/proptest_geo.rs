//! Property-based tests for the geometry substrate, on the
//! `eagleeye-check` harness (see that crate's docs for seed replay via
//! `EAGLEEYE_CHECK_SEED` and case scaling via `EAGLEEYE_CHECK_CASES`).
//!
//! Property bodies are plain functions so the pinned regression cases
//! at the bottom (former `.proptest-regressions` entries) exercise the
//! exact same code as the random cases.

use eagleeye_check::{
    check_cases, f64_range, prop_assert, prop_assert_eq, vec_of, Gen, PropResult,
};
use eagleeye_geo::{greatcircle, GeodeticPoint, GridIndex, LocalFrame};

const CASES: u32 = 128;

fn point_gen() -> impl Gen<Value = GeodeticPoint> {
    (f64_range(-89.0, 89.0), f64_range(-179.9, 179.9))
        .map(|(lat, lon)| GeodeticPoint::from_degrees(lat, lon, 0.0).expect("valid"))
}

fn check_wgs84_round_trip(lat: f64, lon: f64, alt: f64) -> PropResult {
    let p = GeodeticPoint::from_degrees(lat, lon, alt).expect("valid");
    let q = p.to_ecef_wgs84().to_geodetic_wgs84().expect("convertible");
    prop_assert!((p.lat_deg() - q.lat_deg()).abs() < 1e-6);
    prop_assert!((p.alt_m() - q.alt_m()).abs() < 0.1);
    Ok(())
}

/// WGS-84 geodetic <-> ECEF round trip.
#[test]
fn wgs84_round_trip() {
    check_cases(
        CASES,
        "wgs84_round_trip",
        (
            f64_range(-89.9, 89.9),
            f64_range(-180.0, 180.0),
            f64_range(0.0, 1e6),
        ),
        |&(lat, lon, alt)| check_wgs84_round_trip(lat, lon, alt),
    );
}

/// Spherical geodetic <-> ECEF round trip.
#[test]
fn spherical_round_trip() {
    check_cases(
        CASES,
        "spherical_round_trip",
        (
            f64_range(-90.0, 90.0),
            f64_range(-180.0, 180.0),
            f64_range(0.0, 1e6),
        ),
        |&(lat, lon, alt)| {
            let p = GeodeticPoint::from_degrees(lat, lon, alt).expect("valid");
            let q = p
                .to_ecef_spherical()
                .to_geodetic_spherical()
                .expect("convertible");
            prop_assert!((p.lat_deg() - q.lat_deg()).abs() < 1e-7);
            prop_assert!((p.alt_m() - q.alt_m()).abs() < 1e-3);
            Ok(())
        },
    );
}

/// Great-circle distance is symmetric and satisfies the triangle
/// inequality.
#[test]
fn distance_metric_properties() {
    check_cases(
        CASES,
        "distance_metric_properties",
        (point_gen(), point_gen(), point_gen()),
        |(a, b, c)| {
            let ab = greatcircle::distance_m(a, b);
            let ba = greatcircle::distance_m(b, a);
            prop_assert!((ab - ba).abs() < 1e-6);
            let ac = greatcircle::distance_m(a, c);
            let cb = greatcircle::distance_m(c, b);
            prop_assert!(ab <= ac + cb + 1e-6);
            prop_assert!(ab >= 0.0);
            Ok(())
        },
    );
}

/// Traveling `d` along any bearing lands exactly `d` away.
#[test]
fn destination_distance_is_exact() {
    check_cases(
        CASES,
        "destination_distance_is_exact",
        (
            point_gen(),
            f64_range(0.0, std::f64::consts::TAU),
            f64_range(0.0, 5_000_000.0),
        ),
        |(start, bearing, dist)| {
            let end = greatcircle::destination(start, *bearing, *dist).expect("valid");
            let measured = greatcircle::distance_m(start, &end);
            prop_assert!((measured - dist).abs() < 1.0, "{measured} vs {dist}");
            Ok(())
        },
    );
}

/// Local-frame projection round-trips.
#[test]
fn frame_project_unproject() {
    check_cases(
        CASES,
        "frame_project_unproject",
        (
            point_gen(),
            f64_range(0.0, std::f64::consts::TAU),
            f64_range(-200_000.0, 200_000.0),
            f64_range(-200_000.0, 200_000.0),
        ),
        |&(origin, heading, x, y)| {
            let frame = LocalFrame::new(origin, heading);
            let p = frame.unproject(x, y).expect("valid");
            let (x2, y2) = frame.project(&p);
            prop_assert!((x - x2).abs() < 1.0, "x {x} vs {x2}");
            prop_assert!((y - y2).abs() < 1.0, "y {y} vs {y2}");
            Ok(())
        },
    );
}

fn check_grid_index_matches_brute_force(
    pts: &[(f64, f64)],
    center: &GeodeticPoint,
    radius_km: f64,
) -> PropResult {
    let points: Vec<GeodeticPoint> = pts
        .iter()
        .map(|&(lat, lon)| GeodeticPoint::from_degrees(lat, lon, 0.0).expect("valid"))
        .collect();
    let idx = GridIndex::build(2.0, points.iter().map(|p| (p.lat_deg(), p.lon_deg())))
        .expect("valid index");
    let radius = radius_km * 1000.0;
    let got = idx.query_radius(center, radius, |i| points[i]);
    let want: Vec<usize> = (0..points.len())
        .filter(|&i| greatcircle::distance_m(center, &points[i]) <= radius)
        .collect();
    prop_assert_eq!(got, want);
    Ok(())
}

/// Grid-index radius queries agree with brute force.
#[test]
fn grid_index_matches_brute_force() {
    check_cases(
        CASES,
        "grid_index_matches_brute_force",
        (
            vec_of((f64_range(-80.0, 80.0), f64_range(-180.0, 180.0)), 1, 80),
            point_gen(),
            f64_range(10.0, 3_000.0),
        ),
        |(pts, center, radius_km)| check_grid_index_matches_brute_force(pts, center, *radius_km),
    );
}

/// Pinned regression case from the retired `.proptest-regressions`
/// file: a single point near the antimeridian whose grid cell once
/// disagreed with brute force at a ~2200 km radius.
#[test]
fn regression_grid_index_antimeridian_cell() {
    let center = GeodeticPoint::from_degrees(-1.342_895_230_715_296_2_f64.to_degrees(), 0.0, 0.0)
        .expect("valid");
    check_grid_index_matches_brute_force(
        &[(-79.733_503_332_607_38, 94.866_469_682_289_2)],
        &center,
        2_198.127_453_908_176_4,
    )
    .expect("regression case must pass");
}
