use crate::target::{Target, TargetSet};
use crate::world;
use eagleeye_geo::greatcircle;

/// Generates an airplane-tracking workload: flights between major
/// airports, moving at jet ground speeds along great circles.
///
/// Matches the paper's Spire workload: 55,196 planes tracked over 24
/// hours, **with motion modeled** — each flight exists only between its
/// departure and arrival times. The paper notes that some targets appear
/// only late in the simulation, which caps even the Low-Res Only
/// baseline's achievable coverage near 80 % (Fig. 11a); the existence
/// windows reproduce that effect.
///
/// # Example
///
/// ```
/// use eagleeye_datasets::AirplaneGenerator;
///
/// let set = AirplaneGenerator::new()
///     .with_count(100)
///     .with_horizon_s(86_400.0)
///     .generate(1);
/// assert_eq!(set.len(), 100);
/// assert!(set.max_speed_m_s() > 200.0); // jets
/// ```
#[derive(Debug, Clone)]
pub struct AirplaneGenerator {
    count: usize,
    horizon_s: f64,
    min_speed_m_s: f64,
    max_speed_m_s: f64,
}

impl Default for AirplaneGenerator {
    fn default() -> Self {
        AirplaneGenerator {
            count: 55_196,
            horizon_s: 86_400.0,
            min_speed_m_s: 200.0,
            max_speed_m_s: 260.0,
        }
    }
}

impl AirplaneGenerator {
    /// Creates a generator with the paper's full-scale defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of flights.
    pub fn with_count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Sets the simulation horizon over which departures are spread.
    pub fn with_horizon_s(mut self, horizon_s: f64) -> Self {
        self.horizon_s = horizon_s.max(0.0);
        self
    }

    /// Generates the target set, deterministic in `seed`.
    pub fn generate(&self, seed: u64) -> TargetSet {
        let mut rng = world::rng(seed ^ PLANE_SEED_TAG);
        let airports = world::AIRPORTS;
        let mut targets = Vec::with_capacity(self.count);

        for _ in 0..self.count {
            let a = airports[rng.range_usize(0, airports.len())];
            let mut b = airports[rng.range_usize(0, airports.len())];
            while b == a {
                b = airports[rng.range_usize(0, airports.len())];
            }
            let pa = world::fixed_point(a.0, a.1);
            let pb = world::fixed_point(b.0, b.1);
            let route_m = greatcircle::distance_m(&pa, &pb);
            let bearing = greatcircle::initial_bearing_rad(&pa, &pb);
            let speed = rng.range_f64(self.min_speed_m_s, self.max_speed_m_s);
            let duration = route_m / speed;
            // Departures uniform over the horizon: flights departing near
            // the end exist only briefly (matching the paper's
            // "targets appear in the later period" effect).
            let depart = rng.range_f64(0.0, self.horizon_s.max(1.0));

            let mut t = Target::fixed(pa, rng.range_f64(0.5, 1.0));
            t.motion = Some((speed, bearing));
            t.appears_at_s = depart;
            t.disappears_at_s = depart + duration;
            targets.push(t);
        }
        TargetSet::new(targets)
    }
}

const PLANE_SEED_TAG: u64 = 0xc2b2_ae3d_27d4_eb4f;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_determinism() {
        let a = AirplaneGenerator::new().with_count(40).generate(9);
        let b = AirplaneGenerator::new().with_count(40).generate(9);
        assert_eq!(a.len(), 40);
        for i in 0..40 {
            assert_eq!(a.target(i).appears_at_s, b.target(i).appears_at_s);
        }
    }

    #[test]
    fn default_count_matches_paper() {
        assert_eq!(AirplaneGenerator::default().count, 55_196);
    }

    #[test]
    fn flights_have_existence_windows() {
        let set = AirplaneGenerator::new().with_count(200).generate(3);
        for t in set.iter() {
            assert!(t.appears_at_s >= 0.0);
            assert!(t.disappears_at_s > t.appears_at_s);
            assert!(t.disappears_at_s.is_finite());
        }
    }

    #[test]
    fn speeds_are_jet_like() {
        let set = AirplaneGenerator::new().with_count(200).generate(4);
        for t in set.iter() {
            let v = t.speed_m_s();
            assert!((200.0..260.0).contains(&v), "speed {v}");
        }
    }

    #[test]
    fn some_flights_appear_late() {
        // The statistic behind the paper's 80% Low-Res ceiling: a fraction
        // of flights depart in the final quarter of the horizon.
        let set = AirplaneGenerator::new()
            .with_count(400)
            .with_horizon_s(86_400.0)
            .generate(5);
        let late = set
            .iter()
            .filter(|t| t.appears_at_s > 0.75 * 86_400.0)
            .count();
        assert!(late > 50, "late departures: {late}");
    }

    #[test]
    fn flights_land_at_their_destination_airport_distance() {
        let set = AirplaneGenerator::new().with_count(50).generate(6);
        for t in set.iter() {
            let flown = greatcircle::distance_m(&t.position, &t.position_at(t.disappears_at_s));
            let expected = t.speed_m_s() * (t.disappears_at_s - t.appears_at_s);
            assert!((flown - expected).abs() < 1_000.0, "{flown} vs {expected}");
        }
    }
}
