use crate::target::{Target, TargetSet};
use crate::world;

/// The two lake-size bands evaluated in the paper (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LakeSizeBand {
    /// Lakes of 1–10 km² — 166,588 lakes at full scale.
    OneToTenKm2,
    /// Lakes of 0.1–10 km² — 1,410,999 lakes at full scale (the paper's
    /// high-density regime).
    TenthToTenKm2,
}

impl LakeSizeBand {
    /// Full-scale lake count for this band.
    pub fn paper_count(self) -> usize {
        match self {
            LakeSizeBand::OneToTenKm2 => 166_588,
            LakeSizeBand::TenthToTenKm2 => 1_410_999,
        }
    }

    /// Size range in km².
    pub fn area_range_km2(self) -> (f64, f64) {
        match self {
            LakeSizeBand::OneToTenKm2 => (1.0, 10.0),
            LakeSizeBand::TenthToTenKm2 => (0.1, 10.0),
        }
    }
}

/// Generates a lake-monitoring workload: static lake centroids clustered
/// in boreal shield terrain (where HydroLAKES density peaks), with a
/// power-law area distribution within the chosen band.
///
/// This is the paper's high-target-density regime; the 1.4 M band drives
/// the multi-follower and clustering results (Fig. 11c, Fig. 14c).
///
/// # Example
///
/// ```
/// use eagleeye_datasets::{LakeGenerator, LakeSizeBand};
///
/// let lakes = LakeGenerator::new(LakeSizeBand::OneToTenKm2)
///     .with_count(1000)
///     .generate(11);
/// assert_eq!(lakes.len(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct LakeGenerator {
    band: LakeSizeBand,
    count: usize,
}

impl LakeGenerator {
    /// Creates a generator at the band's full paper scale.
    pub fn new(band: LakeSizeBand) -> Self {
        LakeGenerator {
            band,
            count: band.paper_count(),
        }
    }

    /// Sets the number of lakes.
    pub fn with_count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// The configured band.
    pub fn band(&self) -> LakeSizeBand {
        self.band
    }

    /// Generates the target set, deterministic in `seed`.
    ///
    /// Each lake's value is 1.0 (all lakes equally important for bloom
    /// monitoring); lake area in km² is folded into the value scale used
    /// by [`crate::OilTankGenerator`]-style studies via a size-dependent
    /// bonus of up to 0.2 so schedulers have non-uniform priorities.
    pub fn generate(&self, seed: u64) -> TargetSet {
        let mut rng = world::rng(seed ^ LAKE_SEED_TAG);
        let (a_min, a_max) = self.band.area_range_km2();
        let mut targets = Vec::with_capacity(self.count);
        for _ in 0..self.count {
            let position = world::sample_in_boxes(&mut rng, world::LAND_BOXES);
            // Pareto-ish area distribution: many small lakes, few large.
            let u: f64 = rng.next_f64();
            let area = a_min * (a_max / a_min).powf(u * u);
            let value = 1.0 + 0.2 * (area - a_min) / (a_max - a_min);
            targets.push(Target::fixed(position, value));
        }
        TargetSet::new(targets)
    }
}

const LAKE_SEED_TAG: u64 = 0x1656_67b1_9e37_79f9;

#[cfg(test)]
mod tests {
    use super::*;
    use eagleeye_geo::GeodeticPoint;

    #[test]
    fn counts_match_bands() {
        assert_eq!(LakeGenerator::new(LakeSizeBand::OneToTenKm2).count, 166_588);
        assert_eq!(
            LakeGenerator::new(LakeSizeBand::TenthToTenKm2).count,
            1_410_999
        );
    }

    #[test]
    fn boreal_clustering_dominates() {
        let set = LakeGenerator::new(LakeSizeBand::OneToTenKm2)
            .with_count(2000)
            .generate(2);
        let boreal = set
            .iter()
            .filter(|t| t.position.lat_deg() >= 50.0 && t.position.lat_deg() <= 70.0)
            .count();
        let frac = boreal as f64 / set.len() as f64;
        assert!(frac > 0.5, "boreal fraction {frac}");
    }

    #[test]
    fn lakes_are_static_and_permanent() {
        let set = LakeGenerator::new(LakeSizeBand::TenthToTenKm2)
            .with_count(100)
            .generate(3);
        for t in set.iter() {
            assert!(t.motion.is_none());
            assert!(t.exists_at(0.0) && t.exists_at(1e9));
        }
    }

    #[test]
    fn values_reward_larger_lakes_modestly() {
        let set = LakeGenerator::new(LakeSizeBand::OneToTenKm2)
            .with_count(500)
            .generate(4);
        for t in set.iter() {
            assert!(t.value >= 1.0 && t.value <= 1.2 + 1e-9);
        }
    }

    #[test]
    fn determinism() {
        let a = LakeGenerator::new(LakeSizeBand::OneToTenKm2)
            .with_count(64)
            .generate(5);
        let b = LakeGenerator::new(LakeSizeBand::OneToTenKm2)
            .with_count(64)
            .generate(5);
        for i in 0..64 {
            let pa: GeodeticPoint = a.target(i).position;
            let pb: GeodeticPoint = b.target(i).position;
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn density_difference_between_bands() {
        // Same spatial structure, ~8.5x the count: per-frame density in
        // the 1.4M band must exceed the 166K band.
        let small = LakeGenerator::new(LakeSizeBand::OneToTenKm2)
            .with_count(2000)
            .generate(6);
        let large = LakeGenerator::new(LakeSizeBand::TenthToTenKm2)
            .with_count(17_000)
            .generate(6);
        let center = GeodeticPoint::from_degrees(60.0, -100.0, 0.0).unwrap();
        let r = 500_000.0;
        let s = small.query_radius(&center, r, 0.0).len();
        let l = large.query_radius(&center, r, 0.0).len();
        assert!(l > 3 * s, "small {s}, large {l}");
    }
}
