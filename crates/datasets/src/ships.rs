use crate::target::{Target, TargetSet};
use crate::world;
use eagleeye_geo::greatcircle;

/// Generates a ship-detection workload: a static snapshot of ships
/// concentrated on great-circle shipping lanes between major ports, with
/// additional scatter near the ports themselves.
///
/// Matches the paper's Global Fishing Watch workload: 19,119 ships,
/// strongly clustered (so a single low-resolution frame over a lane can
/// contain tens of ships — the regime in which clustering and
/// multi-follower scheduling matter). The paper's dataset is a snapshot
/// without motion, so generated ships are static.
///
/// # Example
///
/// ```
/// use eagleeye_datasets::ShipGenerator;
///
/// let set = ShipGenerator::new().with_count(1000).generate(1);
/// assert_eq!(set.len(), 1000);
/// assert_eq!(set.max_speed_m_s(), 0.0); // snapshot: static
/// ```
#[derive(Debug, Clone)]
pub struct ShipGenerator {
    count: usize,
    lane_fraction: f64,
    lane_sigma_m: f64,
    port_sigma_m: f64,
}

impl Default for ShipGenerator {
    fn default() -> Self {
        ShipGenerator {
            count: 19_119,
            lane_fraction: 0.7,
            lane_sigma_m: 30_000.0,
            port_sigma_m: 80_000.0,
        }
    }
}

impl ShipGenerator {
    /// Creates a generator with the paper's full-scale defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of ships.
    pub fn with_count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Sets the fraction of ships on lanes (the rest cluster near ports).
    pub fn with_lane_fraction(mut self, fraction: f64) -> Self {
        self.lane_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Generates the target set, deterministic in `seed`.
    pub fn generate(&self, seed: u64) -> TargetSet {
        let mut rng = world::rng(seed ^ SHIP_SEED_TAG);
        let ports = world::PORTS;
        let mut targets = Vec::with_capacity(self.count);

        for _ in 0..self.count {
            let value = rng.range_f64(0.5, 1.0); // detection-confidence proxy
            let on_lane = rng.chance(self.lane_fraction);
            let position = if on_lane {
                // Pick a lane between two distinct ports, a point along it,
                // and a Gaussian-ish cross-track offset.
                let a = ports[rng.range_usize(0, ports.len())];
                let mut b = ports[rng.range_usize(0, ports.len())];
                while b == a {
                    b = ports[rng.range_usize(0, ports.len())];
                }
                let pa = world::fixed_point(a.0, a.1);
                let pb = world::fixed_point(b.0, b.1);
                let frac = rng.next_f64();
                let total = greatcircle::distance_m(&pa, &pb);
                let bearing = greatcircle::initial_bearing_rad(&pa, &pb);
                let along = greatcircle::destination(&pa, bearing, total * frac).unwrap_or(pa);
                let offset = rng.gaussian() * self.lane_sigma_m;
                let side = bearing + std::f64::consts::FRAC_PI_2;
                greatcircle::destination(&along, side, offset).unwrap_or(along)
            } else {
                let p = ports[rng.range_usize(0, ports.len())];
                let center = world::fixed_point(p.0, p.1);
                let r = rng.next_f64().sqrt() * self.port_sigma_m;
                let theta = rng.range_f64(0.0, std::f64::consts::TAU);
                greatcircle::destination(&center, theta, r).unwrap_or(center)
            };
            targets.push(Target::fixed(position, value));
        }
        TargetSet::new(targets)
    }
}

/// Seed-mixing constant so different generators fed the same user seed
/// still draw independent streams.
const SHIP_SEED_TAG: u64 = 0x9e37_79b9_7f4a_7c15;

#[cfg(test)]
mod tests {
    use super::*;
    use eagleeye_geo::GeodeticPoint;

    #[test]
    fn count_is_exact() {
        assert_eq!(ShipGenerator::new().with_count(123).generate(0).len(), 123);
    }

    #[test]
    fn default_count_matches_paper() {
        assert_eq!(ShipGenerator::default().count, 19_119);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ShipGenerator::new().with_count(50).generate(7);
        let b = ShipGenerator::new().with_count(50).generate(7);
        for i in 0..50 {
            assert_eq!(a.target(i).position, b.target(i).position);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ShipGenerator::new().with_count(50).generate(1);
        let b = ShipGenerator::new().with_count(50).generate(2);
        let same = (0..50)
            .filter(|&i| a.target(i).position == b.target(i).position)
            .count();
        assert!(same < 5);
    }

    #[test]
    fn ships_are_clustered_not_uniform() {
        // Measure clustering: the fraction of ships with a neighbor within
        // 100 km is far higher than for a uniform global distribution.
        let set = ShipGenerator::new().with_count(500).generate(3);
        let mut near = 0;
        for i in 0..set.len() {
            let p = set.target(i).position;
            let hits = set.query_radius(&p, 100_000.0, 0.0);
            if hits.len() > 1 {
                near += 1;
            }
        }
        let frac = near as f64 / set.len() as f64;
        // Uniform 500 points on Earth: expected neighbor-within-100km
        // fraction ≈ 500·π·(100km)²/510M km² ≈ 3%. Lanes + port clusters
        // push it an order of magnitude higher even at this small count.
        assert!(frac > 0.25, "clustering fraction {frac}");
    }

    #[test]
    fn values_are_confidence_like() {
        let set = ShipGenerator::new().with_count(200).generate(4);
        for t in set.iter() {
            assert!(t.value >= 0.5 && t.value < 1.0);
        }
    }

    #[test]
    fn positions_are_valid() {
        let set = ShipGenerator::new().with_count(200).generate(5);
        for t in set.iter() {
            let _p: GeodeticPoint = t.position; // constructed valid by type
            assert!(t.position.lat_deg().abs() <= 90.0);
        }
    }
}
