//! Shared world geography used by the synthetic generators: major ports,
//! airports, and coarse landmass boxes. Coordinates are approximate —
//! they only need to reproduce realistic *clustering*, not cartography.

use eagleeye_geo::GeodeticPoint;
use eagleeye_rng::SplitMix64;

/// Approximate locations of major world ports `(lat, lon)`.
pub(crate) const PORTS: &[(f64, f64)] = &[
    (31.2, 121.5),  // Shanghai
    (1.3, 103.8),   // Singapore
    (22.5, 114.1),  // Shenzhen
    (29.9, 121.6),  // Ningbo
    (35.1, 129.0),  // Busan
    (25.0, 55.1),   // Jebel Ali
    (51.9, 4.5),    // Rotterdam
    (53.5, 10.0),   // Hamburg
    (49.3, 0.1),    // Le Havre
    (36.1, -5.4),   // Algeciras
    (40.7, -74.0),  // New York
    (33.7, -118.3), // Los Angeles
    (47.6, -122.3), // Seattle
    (29.7, -95.0),  // Houston
    (-33.9, 18.4),  // Cape Town
    (-23.9, -46.3), // Santos
    (19.1, 72.9),   // Mumbai
    (13.1, 80.3),   // Chennai
    (35.5, 139.8),  // Tokyo
    (-33.9, 151.2), // Sydney
    (30.0, 32.5),   // Suez
    (9.0, -79.6),   // Panama
    (59.9, 30.3),   // St. Petersburg
    (-6.1, 106.9),  // Jakarta
    (3.1, 101.4),   // Port Klang
];

/// Approximate locations of major airports `(lat, lon)`.
pub(crate) const AIRPORTS: &[(f64, f64)] = &[
    (33.6, -84.4),  // Atlanta
    (39.9, 116.4),  // Beijing
    (32.9, -97.0),  // Dallas
    (51.5, -0.5),   // London Heathrow
    (35.5, 139.8),  // Tokyo Haneda
    (41.0, -87.9),  // Chicago O'Hare
    (33.9, -118.4), // Los Angeles
    (49.0, 2.5),    // Paris CDG
    (50.0, 8.6),    // Frankfurt
    (22.3, 113.9),  // Hong Kong
    (31.1, 121.8),  // Shanghai Pudong
    (25.3, 55.4),   // Dubai
    (1.4, 103.9),   // Singapore Changi
    (37.5, 126.4),  // Seoul Incheon
    (40.6, -73.8),  // New York JFK
    (52.3, 4.8),    // Amsterdam
    (28.6, 77.1),   // Delhi
    (19.1, 72.9),   // Mumbai
    (-23.4, -46.5), // São Paulo
    (19.4, -99.1),  // Mexico City
    (39.2, -76.7),  // Baltimore
    (12.9, 77.7),   // Bangalore
    (-33.9, 151.2), // Sydney
    (-26.1, 28.2),  // Johannesburg
    (55.6, 37.3),   // Moscow
    (41.3, 28.7),   // Istanbul
    (13.7, 100.7),  // Bangkok
    (-6.1, 106.7),  // Jakarta
    (3.1, 101.5),   // Kuala Lumpur
    (47.4, 8.6),    // Zurich
    (60.3, 25.0),   // Helsinki
    (64.1, -21.9),  // Reykjavik
    (61.2, -149.9), // Anchorage
    (45.5, -73.7),  // Montreal
    (49.2, -123.2), // Vancouver
    (-34.8, -58.5), // Buenos Aires
    (30.1, 31.4),   // Cairo
    (6.6, 3.3),     // Lagos
    (-1.3, 36.9),   // Nairobi
    (24.9, 67.2),   // Karachi
];

/// Coarse landmass bounding boxes `(lat_min, lat_max, lon_min, lon_max,
/// weight)`. Weights are proportional to land area and (for lakes) lake
/// density; boreal boxes carry extra weight because HydroLAKES density
/// peaks in glaciated shield terrain (Canada, Fennoscandia, Siberia).
pub(crate) const LAND_BOXES: &[(f64, f64, f64, f64, f64)] = &[
    // Boreal lake belts (heavy weight).
    (50.0, 70.0, -140.0, -60.0, 30.0), // Canadian shield
    (55.0, 70.0, 5.0, 40.0, 12.0),     // Fennoscandia
    (50.0, 70.0, 40.0, 140.0, 25.0),   // Siberia
    // Mid-latitude continents.
    (25.0, 50.0, -125.0, -70.0, 8.0), // Contiguous US
    (35.0, 55.0, -10.0, 40.0, 6.0),   // Europe
    (20.0, 50.0, 60.0, 120.0, 7.0),   // Central/East Asia
    (5.0, 25.0, 70.0, 90.0, 2.0),     // India
    // Tropics and south.
    (-15.0, 5.0, -75.0, -45.0, 4.0),   // Amazon
    (-35.0, -15.0, -65.0, -40.0, 2.0), // Southern South America
    (-10.0, 15.0, -15.0, 40.0, 3.0),   // Central Africa
    (-35.0, -10.0, 10.0, 40.0, 2.0),   // Southern Africa
    (-40.0, -12.0, 115.0, 153.0, 2.0), // Australia
];

/// Deterministic RNG from a seed (one per generator invocation).
pub(crate) fn rng(seed: u64) -> SplitMix64 {
    SplitMix64::new(seed)
}

/// Samples a point uniformly within a weighted set of boxes, with
/// cos(latitude) area correction inside each box.
pub(crate) fn sample_in_boxes(
    rng: &mut SplitMix64,
    boxes: &[(f64, f64, f64, f64, f64)],
) -> GeodeticPoint {
    let total: f64 = boxes.iter().map(|b| b.4).sum();
    let mut pick = rng.range_f64(0.0, total);
    let mut chosen = boxes[boxes.len() - 1];
    for b in boxes {
        if pick < b.4 {
            chosen = *b;
            break;
        }
        pick -= b.4;
    }
    let (lat_min, lat_max, lon_min, lon_max, _) = chosen;
    // Area-uniform latitude sampling: uniform in sin(lat).
    let s_min = lat_min.to_radians().sin();
    let s_max = lat_max.to_radians().sin();
    let lat = rng.range_f64(s_min, s_max).asin().to_degrees();
    let lon = rng.range_f64(lon_min, lon_max);
    // eagleeye-lint: allow(no-unwrap): lat comes from asin (so |lat| <= 90) and lon from the table's validated boxes
    GeodeticPoint::from_degrees(lat, lon, 0.0).expect("boxes are within valid ranges")
}

/// Converts `(lat, lon)` degrees to a `GeodeticPoint` (panics only on
/// malformed compile-time tables).
pub(crate) fn fixed_point(lat: f64, lon: f64) -> GeodeticPoint {
    // eagleeye-lint: allow(no-unwrap): panicking on a malformed compile-time table is this helper's documented contract
    GeodeticPoint::from_degrees(lat, lon, 0.0).expect("table coordinates are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_contain_valid_coordinates() {
        for &(lat, lon) in PORTS.iter().chain(AIRPORTS.iter()) {
            assert!(lat.abs() <= 90.0 && lon.abs() <= 180.0);
        }
        for &(lat0, lat1, lon0, lon1, w) in LAND_BOXES {
            assert!(lat0 < lat1 && lon0 < lon1 && w > 0.0);
            assert!(lat0 >= -90.0 && lat1 <= 90.0);
        }
    }

    #[test]
    fn box_sampling_stays_in_boxes() {
        let mut r = rng(1);
        for _ in 0..500 {
            let p = sample_in_boxes(&mut r, LAND_BOXES);
            let inside = LAND_BOXES.iter().any(|&(a, b, c, d, _)| {
                p.lat_deg() >= a - 1e-9
                    && p.lat_deg() <= b + 1e-9
                    && p.lon_deg() >= c - 1e-9
                    && p.lon_deg() <= d + 1e-9
            });
            assert!(inside, "point {p} outside all boxes");
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = rng(9);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng(9);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
