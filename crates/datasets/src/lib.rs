//! Synthetic geospatial target datasets reproducing the EagleEye
//! evaluation workloads.
//!
//! The paper evaluates on four real datasets that are not redistributable
//! (Global Fishing Watch ship positions, Spire airplane tracks,
//! HydroLAKES lake polygons, and a Kaggle oil-tank imagery set). Per the
//! reproduction ground rules (see DESIGN.md §"Substitutions"), this crate
//! generates seeded synthetic datasets that match each workload's
//! *scheduling-relevant statistics* — total target count and spatial
//! clustering structure — because the per-frame target-count distribution
//! (paper Fig. 12b) is what drives every scheduling and coverage result.
//!
//! * [`ShipGenerator`] — 19,119 ships concentrated on great-circle
//!   shipping lanes between major ports, plus coastal scatter.
//! * [`AirplaneGenerator`] — 55,196 flights over 24 h between major
//!   airports, *moving* at jet ground speeds; a flight exists only
//!   between its departure and arrival times (this is why Low-Res Only
//!   converges to ~80 % in the paper's Fig. 11a).
//! * [`LakeGenerator`] — boreal-clustered lakes in the paper's two size
//!   bands: 166,588 lakes of 1–10 km² and 1,410,999 of 0.1–10 km².
//! * [`OilTankGenerator`] — tank farms near ports with per-tank diameter
//!   and fill level, the ground truth for the volume-estimation study
//!   (paper Fig. 3).
//!
//! All generators are deterministic in their seed.
//!
//! # Example
//!
//! ```
//! use eagleeye_datasets::{ShipGenerator, Workload};
//!
//! let ships = ShipGenerator::new().with_count(500).generate(42);
//! assert_eq!(ships.len(), 500);
//! // Deterministic in the seed:
//! let again = ShipGenerator::new().with_count(500).generate(42);
//! assert_eq!(ships.target(0).position, again.target(0).position);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod airplanes;
mod lakes;
mod oiltanks;
mod ships;
mod target;
mod world;

pub use airplanes::AirplaneGenerator;
pub use lakes::{LakeGenerator, LakeSizeBand};
pub use oiltanks::{OilTank, OilTankGenerator, TankFarm};
pub use ships::ShipGenerator;
pub use target::{BucketView, Target, TargetId, TargetSet};

/// The four evaluation workloads of the paper, used to label experiment
/// output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Ship detection (Global Fishing Watch scale: 19,119 targets).
    ShipDetection,
    /// Airplane tracking (Spire scale: 55,196 moving targets).
    AirplaneTracking,
    /// Lake monitoring, 1–10 km² band (166,588 targets).
    LakeMonitoring166K,
    /// Lake monitoring, 0.1–10 km² band (1,410,999 targets).
    LakeMonitoring1M4,
}

impl Workload {
    /// All four workloads in the paper's presentation order.
    pub const ALL: [Workload; 4] = [
        Workload::ShipDetection,
        Workload::AirplaneTracking,
        Workload::LakeMonitoring166K,
        Workload::LakeMonitoring1M4,
    ];

    /// The paper's full-scale target count for this workload.
    pub fn paper_count(self) -> usize {
        match self {
            Workload::ShipDetection => 19_119,
            Workload::AirplaneTracking => 55_196,
            Workload::LakeMonitoring166K => 166_588,
            Workload::LakeMonitoring1M4 => 1_410_999,
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Workload::ShipDetection => "Ship Detection",
            Workload::AirplaneTracking => "Airplane Tracking",
            Workload::LakeMonitoring166K => "Lake Monitoring (166K)",
            Workload::LakeMonitoring1M4 => "Lake Monitoring (1.4M)",
        }
    }

    /// Generates this workload's target set at a scaled-down count
    /// (`scale` in `(0, 1]`), preserving spatial structure. The airplane
    /// workload spans `horizon_s` seconds of motion.
    pub fn generate_scaled(self, scale: f64, horizon_s: f64, seed: u64) -> TargetSet {
        let count = ((self.paper_count() as f64 * scale).round() as usize).max(1);
        match self {
            Workload::ShipDetection => ShipGenerator::new().with_count(count).generate(seed),
            Workload::AirplaneTracking => AirplaneGenerator::new()
                .with_count(count)
                .with_horizon_s(horizon_s)
                .generate(seed),
            Workload::LakeMonitoring166K => LakeGenerator::new(LakeSizeBand::OneToTenKm2)
                .with_count(count)
                .generate(seed),
            Workload::LakeMonitoring1M4 => LakeGenerator::new(LakeSizeBand::TenthToTenKm2)
                .with_count(count)
                .generate(seed),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_match_the_paper() {
        assert_eq!(Workload::ShipDetection.paper_count(), 19_119);
        assert_eq!(Workload::AirplaneTracking.paper_count(), 55_196);
        assert_eq!(Workload::LakeMonitoring166K.paper_count(), 166_588);
        assert_eq!(Workload::LakeMonitoring1M4.paper_count(), 1_410_999);
    }

    #[test]
    fn scaled_generation_respects_scale() {
        let t = Workload::ShipDetection.generate_scaled(0.01, 0.0, 7);
        assert_eq!(t.len(), 191);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Workload::ALL.iter().map(|w| w.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
