use eagleeye_geo::{greatcircle, GeodeticPoint, GridIndex};
// eagleeye-lint: allow(determinism): bucket indices are read by key only; iteration order never escapes
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Identifier of a target within its [`TargetSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TargetId(pub usize);

/// One sensing target.
///
/// Static targets (ships-snapshot, lakes, tanks) have `motion: None` and
/// exist for the whole simulation. Moving targets (airplanes) carry a
/// great-circle motion and an existence window.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Target {
    /// Position at `t = appears_at_s` (for static targets, the fixed
    /// position).
    pub position: GeodeticPoint,
    /// Priority value of the target; the scheduler maximizes the sum of
    /// captured values (paper §3.2 uses detection confidence).
    pub value: f64,
    /// Ground speed (m/s) and initial bearing (rad) for moving targets.
    pub motion: Option<(f64, f64)>,
    /// Simulation time at which the target starts existing, seconds.
    pub appears_at_s: f64,
    /// Simulation time at which the target stops existing, seconds
    /// (`f64::INFINITY` for permanent targets).
    pub disappears_at_s: f64,
}

impl Target {
    /// Creates a permanent, static target.
    pub fn fixed(position: GeodeticPoint, value: f64) -> Self {
        Target {
            position,
            value,
            motion: None,
            appears_at_s: 0.0,
            disappears_at_s: f64::INFINITY,
        }
    }

    /// True when the target exists at simulation time `t_s`.
    #[inline]
    pub fn exists_at(&self, t_s: f64) -> bool {
        t_s >= self.appears_at_s && t_s <= self.disappears_at_s
    }

    /// Position at simulation time `t_s`. Moving targets travel a great
    /// circle from their initial position; static targets never move.
    /// The position saturates at the end of the existence window.
    pub fn position_at(&self, t_s: f64) -> GeodeticPoint {
        match self.motion {
            None => self.position,
            Some((speed, bearing)) => {
                let t = t_s.clamp(self.appears_at_s, self.disappears_at_s);
                let dist = speed * (t - self.appears_at_s);
                greatcircle::destination(&self.position, bearing, dist).unwrap_or(self.position)
            }
        }
    }

    /// Maximum ground speed of the target (0 for static targets).
    #[inline]
    pub fn speed_m_s(&self) -> f64 {
        self.motion.map(|(v, _)| v).unwrap_or(0.0)
    }
}

/// Seconds per time bucket for the moving-target spatial index.
const BUCKET_S: f64 = 300.0;

/// A set of targets with spatial indexing.
///
/// For static targets a single [`GridIndex`] answers frame-membership
/// queries. For moving targets the set lazily builds one index per
/// five-minute time bucket (positions sampled at the bucket
/// midpoint) and pads queries by the worst-case intra-bucket motion, so
/// queries stay exact.
///
/// # Example
///
/// ```
/// use eagleeye_datasets::{Target, TargetSet};
/// use eagleeye_geo::GeodeticPoint;
///
/// let targets = vec![
///     Target::fixed(GeodeticPoint::from_degrees(10.0, 10.0, 0.0)?, 1.0),
///     Target::fixed(GeodeticPoint::from_degrees(-60.0, 100.0, 0.0)?, 1.0),
/// ];
/// let set = TargetSet::new(targets);
/// let center = GeodeticPoint::from_degrees(10.0, 10.0, 0.0)?;
/// let hits = set.query_radius(&center, 100_000.0, 0.0);
/// assert_eq!(hits.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TargetSet {
    targets: Vec<Target>,
    max_speed_m_s: f64,
    /// Lazily-built per-bucket indices keyed by bucket number.
    // eagleeye-lint: allow(determinism): accessed only by bucket key, never iterated
    bucket_indices: Mutex<HashMap<i64, Arc<GridIndex>>>,
}

/// A snapshot of the spatial index for one time bucket: the
/// lazily-built [`GridIndex`] over target positions sampled at the
/// bucket midpoint, plus the worst-case intra-bucket motion pad that
/// keeps queries exact. Obtained from [`TargetSet::bucket_view`]; valid
/// for every query time inside that bucket.
///
/// Holding a view lets a caller that sweeps many frames within one
/// bucket (the coverage compiler's per-segment sweep) take the
/// `TargetSet` index lock once per segment instead of once per frame,
/// then run per-frame candidate queries lock-free.
#[derive(Debug, Clone)]
pub struct BucketView {
    index: Arc<GridIndex>,
    bucket: i64,
    midpoint_t_s: f64,
    pad_m: f64,
}

impl BucketView {
    /// True when `t_s` falls inside this view's time bucket, i.e. the
    /// view answers queries at `t_s` exactly.
    #[inline]
    pub fn covers(&self, t_s: f64) -> bool {
        (t_s / BUCKET_S).floor() as i64 == self.bucket
    }

    /// The bucket-midpoint sample time the index was built at.
    #[inline]
    pub fn midpoint_t_s(&self) -> f64 {
        self.midpoint_t_s
    }

    /// The query pad (meters) covering worst-case target drift between
    /// the midpoint sample and any time inside the bucket.
    #[inline]
    pub fn pad_m(&self) -> f64 {
        self.pad_m
    }
}

impl TargetSet {
    /// Builds a target set.
    pub fn new(targets: Vec<Target>) -> Self {
        let max_speed_m_s = targets.iter().map(Target::speed_m_s).fold(0.0, f64::max);
        TargetSet {
            targets,
            max_speed_m_s,
            // eagleeye-lint: allow(determinism): accessed only by bucket key, never iterated
            bucket_indices: Mutex::new(HashMap::new()),
        }
    }

    /// Number of targets.
    #[inline]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when there are no targets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Access a target by index.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[inline]
    pub fn target(&self, i: usize) -> &Target {
        &self.targets[i]
    }

    /// Iterates over all targets.
    pub fn iter(&self) -> std::slice::Iter<'_, Target> {
        self.targets.iter()
    }

    /// All targets as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Target] {
        &self.targets
    }

    /// Fastest target in the set, m/s.
    #[inline]
    pub fn max_speed_m_s(&self) -> f64 {
        self.max_speed_m_s
    }

    /// Number of targets that exist at any point during `[0, horizon_s]`.
    pub fn count_existing_within(&self, horizon_s: f64) -> usize {
        self.targets
            .iter()
            .filter(|t| t.appears_at_s <= horizon_s && t.disappears_at_s >= 0.0)
            .collect::<Vec<_>>()
            .len()
    }

    /// Returns indices of targets that exist at `t_s` and lie within
    /// `radius_m` of `center` at that time, ascending.
    pub fn query_radius(&self, center: &GeodeticPoint, radius_m: f64, t_s: f64) -> Vec<usize> {
        let view = self.bucket_view(t_s);
        self.candidates_in(&view, center, radius_m)
            .into_iter()
            .filter(|&i| self.within_radius_at(i, center, radius_m, t_s))
            .collect()
    }

    /// The spatial-index view for the time bucket containing `t_s`,
    /// building the bucket's [`GridIndex`] on first use. Takes the
    /// internal index lock once; the returned view queries lock-free.
    pub fn bucket_view(&self, t_s: f64) -> BucketView {
        let bucket = (t_s / BUCKET_S).floor() as i64;
        let pad_m = self.max_speed_m_s * BUCKET_S; // worst-case drift from midpoint, doubled below
        let midpoint_t_s = (bucket as f64 + 0.5) * BUCKET_S;
        // A poisoned lock only means another thread panicked mid-insert;
        // the cache itself is an optimization, so recover the guard.
        let mut map = self
            .bucket_indices
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let index = map
            .entry(bucket)
            .or_insert_with(|| {
                Arc::new(
                    GridIndex::build(
                        2.0,
                        self.targets.iter().map(|t| {
                            let p = t.position_at(midpoint_t_s);
                            (p.lat_deg(), p.lon_deg())
                        }),
                    )
                    // eagleeye-lint: allow(no-unwrap): cell size is the constant 2.0 above
                    .expect("positive cell size"),
                )
            })
            .clone();
        BucketView {
            index,
            bucket,
            midpoint_t_s,
            pad_m,
        }
    }

    /// Candidate target indices within `radius_m` of `center` for any
    /// query time inside the view's bucket, ascending: a superset of
    /// every exact [`query_radius`](Self::query_radius) result with the
    /// same center/radius at those times (the view pads the query by the
    /// worst-case intra-bucket drift). Callers refine with
    /// [`within_radius_at`](Self::within_radius_at).
    pub fn candidates_in(
        &self,
        view: &BucketView,
        center: &GeodeticPoint,
        radius_m: f64,
    ) -> Vec<usize> {
        view.index.query_radius(
            // eagleeye-lint: allow(no-unwrap): altitude 0.0 is always in range
            &center.with_altitude(0.0).expect("valid altitude"),
            radius_m + view.pad_m,
            |i| self.targets[i].position_at(view.midpoint_t_s),
        )
    }

    /// Exact membership test: target `i` exists at `t_s` and its
    /// position at `t_s` is within `radius_m` of `center`. This is the
    /// refinement predicate of [`query_radius`](Self::query_radius),
    /// exposed so segment-sweep callers reproduce its results
    /// bit-for-bit from [`candidates_in`](Self::candidates_in) supersets.
    #[inline]
    pub fn within_radius_at(
        &self,
        i: usize,
        center: &GeodeticPoint,
        radius_m: f64,
        t_s: f64,
    ) -> bool {
        let t = &self.targets[i];
        t.exists_at(t_s) && greatcircle::distance_m(center, &t.position_at(t_s)) <= radius_m
    }

    /// Sum of values over all targets.
    pub fn total_value(&self) -> f64 {
        self.targets.iter().map(|t| t.value).sum()
    }
}

impl FromIterator<Target> for TargetSet {
    fn from_iter<I: IntoIterator<Item = Target>>(iter: I) -> Self {
        TargetSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lat: f64, lon: f64) -> GeodeticPoint {
        GeodeticPoint::from_degrees(lat, lon, 0.0).unwrap()
    }

    #[test]
    fn fixed_targets_never_move() {
        let t = Target::fixed(pt(10.0, 20.0), 1.0);
        assert_eq!(t.position_at(0.0), t.position_at(1e6));
        assert!(t.exists_at(0.0));
        assert!(t.exists_at(1e9));
    }

    #[test]
    fn moving_target_travels_at_speed() {
        let mut t = Target::fixed(pt(0.0, 0.0), 1.0);
        t.motion = Some((100.0, 0.0)); // 100 m/s due north
        let p = t.position_at(1000.0);
        let d = greatcircle::distance_m(&t.position, &p);
        assert!((d - 100_000.0).abs() < 1.0, "d = {d}");
    }

    #[test]
    fn existence_window_is_respected() {
        let mut t = Target::fixed(pt(0.0, 0.0), 1.0);
        t.appears_at_s = 100.0;
        t.disappears_at_s = 200.0;
        assert!(!t.exists_at(99.0));
        assert!(t.exists_at(150.0));
        assert!(!t.exists_at(201.0));
    }

    #[test]
    fn position_saturates_outside_window() {
        let mut t = Target::fixed(pt(0.0, 0.0), 1.0);
        t.motion = Some((100.0, 0.0));
        t.appears_at_s = 0.0;
        t.disappears_at_s = 100.0;
        // After disappearing, position stays at the final point.
        assert_eq!(t.position_at(100.0), t.position_at(10_000.0));
    }

    #[test]
    fn static_query_matches_brute_force() {
        let targets: Vec<Target> = (0..200)
            .map(|i| {
                let lat = -60.0 + (i % 25) as f64 * 5.0;
                let lon = -180.0 + (i / 25) as f64 * 40.0;
                Target::fixed(pt(lat, lon), 1.0)
            })
            .collect();
        let set = TargetSet::new(targets.clone());
        let center = pt(0.0, 0.0);
        let got = set.query_radius(&center, 2_000_000.0, 0.0);
        let want: Vec<usize> = (0..targets.len())
            .filter(|&i| greatcircle::distance_m(&center, &targets[i].position) <= 2_000_000.0)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn moving_query_finds_target_at_later_position() {
        let mut t = Target::fixed(pt(0.0, 0.0), 1.0);
        t.motion = Some((250.0, std::f64::consts::FRAC_PI_2)); // east, jet speed
        let set = TargetSet::new(vec![t]);
        // After 2000 s the plane is ~500 km east.
        let future = t.position_at(2000.0);
        let hits = set.query_radius(&future, 10_000.0, 2000.0);
        assert_eq!(hits, vec![0]);
        // And it is NOT near its origin anymore.
        let at_origin = set.query_radius(&pt(0.0, 0.0), 10_000.0, 2000.0);
        assert!(at_origin.is_empty());
    }

    #[test]
    fn query_excludes_nonexistent_targets() {
        let mut t = Target::fixed(pt(0.0, 0.0), 1.0);
        t.appears_at_s = 1000.0;
        let set = TargetSet::new(vec![t]);
        assert!(set.query_radius(&pt(0.0, 0.0), 10_000.0, 0.0).is_empty());
        assert_eq!(set.query_radius(&pt(0.0, 0.0), 10_000.0, 1500.0), vec![0]);
    }

    #[test]
    fn from_iterator_collects() {
        let set: TargetSet = (0..5)
            .map(|i| Target::fixed(pt(i as f64, 0.0), 1.0))
            .collect();
        assert_eq!(set.len(), 5);
        assert_eq!(set.total_value(), 5.0);
    }
}
