use crate::target::{Target, TargetSet};
use crate::world;
use eagleeye_geo::{greatcircle, GeodeticPoint};

/// One oil storage tank with ground truth for the volume-estimation
/// study (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OilTank {
    /// Tank center.
    pub position: GeodeticPoint,
    /// Tank (external floating roof) diameter in meters.
    pub diameter_m: f64,
    /// Fill level in `[0, 1]` — the quantity the shadow method estimates.
    pub fill_level: f64,
}

/// A cluster of tanks at one site (refinery / terminal).
#[derive(Debug, Clone, PartialEq)]
pub struct TankFarm {
    /// Farm centroid.
    pub center: GeodeticPoint,
    /// Tanks at this site.
    pub tanks: Vec<OilTank>,
}

/// Generates the oil-tank workload: tank farms near major ports, each a
/// grid-ish cluster of external-floating-roof tanks with known diameter
/// and fill level.
///
/// The paper uses this dataset for the two-stage ML study only (tank
/// detection accuracy and shadow-based volume estimation error vs. GSD,
/// Fig. 3); there is no geographic scheduling evaluation. We additionally
/// expose the farms as a [`TargetSet`] so the clustering module can be
/// exercised on realistic dense point patterns.
///
/// # Example
///
/// ```
/// use eagleeye_datasets::OilTankGenerator;
///
/// let farms = OilTankGenerator::new().with_farm_count(20).generate(1);
/// assert_eq!(farms.len(), 20);
/// let total: usize = farms.iter().map(|f| f.tanks.len()).sum();
/// assert!(total >= 20 * 5);
/// ```
#[derive(Debug, Clone)]
pub struct OilTankGenerator {
    farm_count: usize,
    min_tanks: usize,
    max_tanks: usize,
}

impl Default for OilTankGenerator {
    fn default() -> Self {
        // ~10,000 images in the paper's Kaggle set; model as ~500 sites.
        OilTankGenerator {
            farm_count: 500,
            min_tanks: 5,
            max_tanks: 50,
        }
    }
}

impl OilTankGenerator {
    /// Creates a generator with defaults sized like the paper's dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of tank farms.
    pub fn with_farm_count(mut self, n: usize) -> Self {
        self.farm_count = n;
        self
    }

    /// Sets the per-farm tank count range (inclusive).
    pub fn with_tanks_per_farm(mut self, min: usize, max: usize) -> Self {
        self.min_tanks = min.max(1);
        self.max_tanks = max.max(self.min_tanks);
        self
    }

    /// Generates the farms, deterministic in `seed`.
    pub fn generate(&self, seed: u64) -> Vec<TankFarm> {
        let mut rng = world::rng(seed ^ TANK_SEED_TAG);
        let ports = world::PORTS;
        let mut farms = Vec::with_capacity(self.farm_count);
        for _ in 0..self.farm_count {
            let p = ports[rng.range_usize(0, ports.len())];
            let port = world::fixed_point(p.0, p.1);
            let r = rng.next_f64().sqrt() * 40_000.0;
            let theta = rng.range_f64(0.0, std::f64::consts::TAU);
            let center = greatcircle::destination(&port, theta, r).unwrap_or(port);

            let n = rng.range_usize_inclusive(self.min_tanks, self.max_tanks);
            let cols = (n as f64).sqrt().ceil() as usize;
            let pitch = rng.range_f64(80.0, 150.0);
            let mut tanks = Vec::with_capacity(n);
            for k in 0..n {
                let row = k / cols;
                let col = k % cols;
                let east = (col as f64 - cols as f64 / 2.0) * pitch;
                let north = (row as f64) * pitch;
                let pos = greatcircle::destination(&center, std::f64::consts::FRAC_PI_2, east)
                    .and_then(|q| greatcircle::destination(&q, 0.0, north))
                    .unwrap_or(center);
                tanks.push(OilTank {
                    position: pos,
                    diameter_m: rng.range_f64(20.0, 80.0),
                    fill_level: rng.range_f64(0.05, 0.95),
                });
            }
            farms.push(TankFarm { center, tanks });
        }
        farms
    }

    /// Generates the farms and flattens them to a [`TargetSet`] (one
    /// target per farm, value = tank count, for scheduling experiments).
    pub fn generate_as_targets(&self, seed: u64) -> TargetSet {
        self.generate(seed)
            .into_iter()
            .map(|f| Target::fixed(f.center, f.tanks.len() as f64))
            .collect()
    }
}

const TANK_SEED_TAG: u64 = 0x27d4_eb2f_1656_67b1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farm_and_tank_counts() {
        let farms = OilTankGenerator::new()
            .with_farm_count(30)
            .with_tanks_per_farm(5, 10)
            .generate(2);
        assert_eq!(farms.len(), 30);
        for f in &farms {
            assert!((5..=10).contains(&f.tanks.len()));
        }
    }

    #[test]
    fn tanks_cluster_tightly_around_farm() {
        let farms = OilTankGenerator::new().with_farm_count(10).generate(3);
        for f in &farms {
            for t in &f.tanks {
                let d = greatcircle::distance_m(&f.center, &t.position);
                assert!(d < 5_000.0, "tank {d} m from farm center");
            }
        }
    }

    #[test]
    fn fill_levels_and_diameters_in_range() {
        let farms = OilTankGenerator::new().with_farm_count(20).generate(4);
        for f in &farms {
            for t in &f.tanks {
                assert!((0.0..=1.0).contains(&t.fill_level));
                assert!((20.0..80.0).contains(&t.diameter_m));
            }
        }
    }

    #[test]
    fn targets_value_equals_tank_count() {
        let g = OilTankGenerator::new().with_farm_count(15);
        let farms = g.generate(5);
        let targets = g.generate_as_targets(5);
        assert_eq!(targets.len(), 15);
        for (i, f) in farms.iter().enumerate() {
            assert_eq!(targets.target(i).value, f.tanks.len() as f64);
        }
    }

    #[test]
    fn determinism() {
        let a = OilTankGenerator::new().with_farm_count(8).generate(6);
        let b = OilTankGenerator::new().with_farm_count(8).generate(6);
        assert_eq!(a, b);
    }
}
