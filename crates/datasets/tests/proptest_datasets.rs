//! Property-based tests for the synthetic dataset generators, on the
//! `eagleeye-check` harness (replay with `EAGLEEYE_CHECK_SEED`, scale
//! with `EAGLEEYE_CHECK_CASES`).
//!
//! The airplane-kinematics body is a plain function so the pinned
//! regression case at the bottom (former `.proptest-regressions`
//! entry) exercises the same code as the random cases.

use eagleeye_check::{
    check_cases, f64_range, prop_assert, prop_assert_eq, u64_range, usize_range, PropResult,
};
use eagleeye_datasets::{
    AirplaneGenerator, LakeGenerator, LakeSizeBand, OilTankGenerator, ShipGenerator,
};
use eagleeye_geo::greatcircle;

const CASES: u32 = 24;

/// Generators honor the requested count and are seed-deterministic.
#[test]
fn counts_and_determinism() {
    check_cases(
        CASES,
        "counts_and_determinism",
        (usize_range(1, 300), u64_range(0, 1000)),
        |&(count, seed)| {
            let a = ShipGenerator::new().with_count(count).generate(seed);
            let b = ShipGenerator::new().with_count(count).generate(seed);
            prop_assert_eq!(a.len(), count);
            for i in 0..count {
                prop_assert_eq!(a.target(i).position, b.target(i).position);
                prop_assert_eq!(a.target(i).value, b.target(i).value);
            }
            Ok(())
        },
    );
}

fn check_airplane_kinematics(count: usize, seed: u64, horizon: f64) -> PropResult {
    let set = AirplaneGenerator::new()
        .with_count(count)
        .with_horizon_s(horizon)
        .generate(seed);
    for t in set.iter() {
        let v = t.speed_m_s();
        prop_assert!((150.0..300.0).contains(&v), "speed {v}");
        prop_assert!(t.appears_at_s >= 0.0 && t.appears_at_s <= horizon + 1.0);
        let duration = t.disappears_at_s - t.appears_at_s;
        prop_assert!(
            duration > 0.0 && duration < 30.0 * 3600.0,
            "flight duration {duration}"
        );
        // Moving along a great circle: distance at mid-flight matches
        // speed * elapsed.
        let mid = t.appears_at_s + duration / 2.0;
        let d = greatcircle::distance_m(&t.position, &t.position_at(mid));
        prop_assert!((d - v * duration / 2.0).abs() < 2_000.0);
    }
    Ok(())
}

/// Airplane existence windows are consistent with route length and
/// speed, and all flights stay within jet performance.
#[test]
fn airplane_kinematics() {
    check_cases(
        CASES,
        "airplane_kinematics",
        (
            usize_range(1, 120),
            u64_range(0, 1000),
            f64_range(600.0, 86_400.0),
        ),
        |&(count, seed, horizon)| check_airplane_kinematics(count, seed, horizon),
    );
}

/// Lake values stay within the documented band and positions are on
/// the globe.
#[test]
fn lake_invariants() {
    check_cases(
        CASES,
        "lake_invariants",
        (usize_range(1, 300), u64_range(0, 1000)),
        |&(count, seed)| {
            for band in [LakeSizeBand::OneToTenKm2, LakeSizeBand::TenthToTenKm2] {
                let set = LakeGenerator::new(band).with_count(count).generate(seed);
                prop_assert_eq!(set.len(), count);
                for t in set.iter() {
                    prop_assert!(t.value >= 1.0 && t.value <= 1.2 + 1e-9);
                    prop_assert!(t.position.lat_deg().abs() <= 90.0);
                    prop_assert!(t.motion.is_none());
                }
            }
            Ok(())
        },
    );
}

/// Tank farms: every tank is near its farm center, with physical
/// diameters and fill levels.
#[test]
fn tank_farm_invariants() {
    check_cases(
        CASES,
        "tank_farm_invariants",
        (usize_range(1, 40), u64_range(0, 1000)),
        |&(farms, seed)| {
            let fs = OilTankGenerator::new()
                .with_farm_count(farms)
                .generate(seed);
            prop_assert_eq!(fs.len(), farms);
            for f in &fs {
                prop_assert!(!f.tanks.is_empty());
                for t in &f.tanks {
                    prop_assert!((0.0..=1.0).contains(&t.fill_level));
                    prop_assert!(t.diameter_m > 10.0 && t.diameter_m < 100.0);
                    let d = greatcircle::distance_m(&f.center, &t.position);
                    prop_assert!(d < 10_000.0, "tank {d} m from center");
                }
            }
            Ok(())
        },
    );
}

/// Radius queries against moving sets agree with brute force at an
/// arbitrary time.
#[test]
fn moving_query_matches_brute_force() {
    check_cases(
        CASES,
        "moving_query_matches_brute_force",
        (
            usize_range(1, 80),
            u64_range(0, 200),
            f64_range(0.0, 7_200.0),
            f64_range(-60.0, 60.0),
            f64_range(-170.0, 170.0),
        ),
        |&(count, seed, t, lat, lon)| {
            let set = AirplaneGenerator::new()
                .with_count(count)
                .with_horizon_s(7_200.0)
                .generate(seed);
            let center = eagleeye_geo::GeodeticPoint::from_degrees(lat, lon, 0.0).expect("valid");
            let radius = 500_000.0;
            let got = set.query_radius(&center, radius, t);
            let want: Vec<usize> = (0..set.len())
                .filter(|&i| {
                    let tg = set.target(i);
                    tg.exists_at(t)
                        && greatcircle::distance_m(&center, &tg.position_at(t)) <= radius
                })
                .collect();
            prop_assert_eq!(got, want);
            Ok(())
        },
    );
}

/// Pinned regression case from the retired `.proptest-regressions`
/// file: a 44-plane set at the minimum horizon, where short flights
/// once violated the duration lower bound.
#[test]
fn regression_airplane_kinematics_short_horizon() {
    check_airplane_kinematics(44, 679, 600.0).expect("regression case must pass");
}
