//! Property-based tests for the synthetic dataset generators.

use eagleeye_datasets::{
    AirplaneGenerator, LakeGenerator, LakeSizeBand, OilTankGenerator, ShipGenerator,
};
use eagleeye_geo::greatcircle;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generators honor the requested count and are seed-deterministic.
    #[test]
    fn counts_and_determinism(count in 1usize..300, seed in 0u64..1000) {
        let a = ShipGenerator::new().with_count(count).generate(seed);
        let b = ShipGenerator::new().with_count(count).generate(seed);
        prop_assert_eq!(a.len(), count);
        for i in 0..count {
            prop_assert_eq!(a.target(i).position, b.target(i).position);
            prop_assert_eq!(a.target(i).value, b.target(i).value);
        }
    }

    /// Airplane existence windows are consistent with route length and
    /// speed, and all flights stay within jet performance.
    #[test]
    fn airplane_kinematics(count in 1usize..120, seed in 0u64..1000, horizon in 600.0f64..86_400.0) {
        let set = AirplaneGenerator::new()
            .with_count(count)
            .with_horizon_s(horizon)
            .generate(seed);
        for t in set.iter() {
            let v = t.speed_m_s();
            prop_assert!((150.0..300.0).contains(&v), "speed {v}");
            prop_assert!(t.appears_at_s >= 0.0 && t.appears_at_s <= horizon + 1.0);
            let duration = t.disappears_at_s - t.appears_at_s;
            prop_assert!(duration > 0.0 && duration < 30.0 * 3600.0,
                "flight duration {duration}");
            // Moving along a great circle: distance at mid-flight matches
            // speed * elapsed.
            let mid = t.appears_at_s + duration / 2.0;
            let d = greatcircle::distance_m(&t.position, &t.position_at(mid));
            prop_assert!((d - v * duration / 2.0).abs() < 2_000.0);
        }
    }

    /// Lake values stay within the documented band and positions are on
    /// the globe.
    #[test]
    fn lake_invariants(count in 1usize..300, seed in 0u64..1000) {
        for band in [LakeSizeBand::OneToTenKm2, LakeSizeBand::TenthToTenKm2] {
            let set = LakeGenerator::new(band).with_count(count).generate(seed);
            prop_assert_eq!(set.len(), count);
            for t in set.iter() {
                prop_assert!(t.value >= 1.0 && t.value <= 1.2 + 1e-9);
                prop_assert!(t.position.lat_deg().abs() <= 90.0);
                prop_assert!(t.motion.is_none());
            }
        }
    }

    /// Tank farms: every tank is near its farm center, with physical
    /// diameters and fill levels.
    #[test]
    fn tank_farm_invariants(farms in 1usize..40, seed in 0u64..1000) {
        let fs = OilTankGenerator::new().with_farm_count(farms).generate(seed);
        prop_assert_eq!(fs.len(), farms);
        for f in &fs {
            prop_assert!(!f.tanks.is_empty());
            for t in &f.tanks {
                prop_assert!((0.0..=1.0).contains(&t.fill_level));
                prop_assert!(t.diameter_m > 10.0 && t.diameter_m < 100.0);
                let d = greatcircle::distance_m(&f.center, &t.position);
                prop_assert!(d < 10_000.0, "tank {d} m from center");
            }
        }
    }

    /// Radius queries against moving sets agree with brute force at an
    /// arbitrary time.
    #[test]
    fn moving_query_matches_brute_force(
        count in 1usize..80,
        seed in 0u64..200,
        t in 0.0f64..7_200.0,
        lat in -60.0f64..60.0,
        lon in -170.0f64..170.0,
    ) {
        let set = AirplaneGenerator::new()
            .with_count(count)
            .with_horizon_s(7_200.0)
            .generate(seed);
        let center = eagleeye_geo::GeodeticPoint::from_degrees(lat, lon, 0.0).expect("valid");
        let radius = 500_000.0;
        let got = set.query_radius(&center, radius, t);
        let want: Vec<usize> = (0..set.len())
            .filter(|&i| {
                let tg = set.target(i);
                tg.exists_at(t)
                    && greatcircle::distance_m(&center, &tg.position_at(t)) <= radius
            })
            .collect();
        prop_assert_eq!(got, want);
    }
}
